//! The unified, mechanism-agnostic release API.
//!
//! The paper's framework is *general*: any LPP transform paired with any
//! zero-mean noise mechanism yields the same unbiased estimator
//! (Lemmas 3/4). This module makes that generality the public surface:
//!
//! * [`PrivateSketcher`] — one object-safe trait over every construction:
//!   release (`sketch`/`sketch_sparse`/`sketch_batch`), estimate, and
//!   introspect (`k`, `guarantee`, `debias_constant`,
//!   `predicted_variance`, `spec`). Service layers hold a
//!   `Box<dyn PrivateSketcher>` and never name a concrete construction.
//! * [`Construction`] — the paper's constructions as data: the private
//!   SJLT (Note 5 auto, or forced Laplace/Gaussian), both §5.2 FJLT
//!   variants, and the Kenthapadi et al. baseline.
//! * [`SketcherSpec`] — a serializable (construction, config, public
//!   transform seed) triple. Every party in the distributed protocol
//!   rebuilds the *identical* sketcher from the same spec, which is what
//!   makes releases interoperable; the JSON form travels on the wire.
//! * [`AnySketcher`] — the trait's canonical implementation: an enum over
//!   all constructions, built from a [`SketcherSpec`].
//! * [`pairwise_sq_distances`] — the all-pairs estimate surface over
//!   released sketches, returning a flat row-major matrix.
//!
//! The Note 5 mechanism-selection rule applies uniformly here: a
//! [`Construction::SjltAuto`] spec resolves Laplace-vs-Gaussian from the
//! config's `(s, δ)` exactly as [`crate::config::SketchConfig`] dictates,
//! deterministically, on every party.
//!
//! # Parallel execution and the determinism contract
//!
//! The execution paths run on the [`Parallelism`] knob from
//! [`dp_parallel`]: [`AnySketcher`] carries one (env-driven by default,
//! explicit via [`AnySketcher::with_parallelism`] /
//! [`SketcherSpec::build_with`]), batch releases split rows across
//! workers ([`sketch_batch_par`]), and the all-pairs surface runs a
//! cache-blocked tile kernel ([`pairwise_sq_distances_with_par`]).
//! Results are **bit-identical** for every thread count and tile size:
//! per-row noise seeds derive from the row *index* (`noise_seed.index(row)`),
//! never from the executing worker, and each pair's estimate is computed
//! exactly once by one tile with the identical floating-point expression
//! the sequential reference uses.

use crate::achlioptas_private::PrivateAchlioptas;
use crate::config::SketchConfig;
use crate::error::CoreError;
use crate::estimator::{DistanceEstimate, NoisySketch};
use crate::fjlt_private::{PrivateFjltInput, PrivateFjltOutput};
use crate::json::{self, JsonValue};
use crate::kenthapadi::{Kenthapadi, SigmaCalibration};
use crate::kernel::{self, KernelId};
use crate::sjlt_private::PrivateSjlt;
use dp_hashing::Seed;
use dp_linalg::SparseVector;
use dp_noise::PrivacyGuarantee;
use dp_parallel::{
    par_chunks_mut, par_map, par_split_mut, Parallelism, Tile, TilePlan, TileSegment,
};
use dp_transforms::LinearTransform;

/// One object-safe interface over every private-sketch construction.
///
/// All methods take `&self`; a `&dyn PrivateSketcher` or
/// `Box<dyn PrivateSketcher>` is a complete release endpoint.
pub trait PrivateSketcher {
    /// Release a noisy sketch of a dense vector. The `noise_seed` must be
    /// private to the releasing party and fresh per release.
    ///
    /// # Errors
    /// [`CoreError::Transform`] on dimension mismatch.
    fn sketch(&self, x: &[f64], noise_seed: Seed) -> Result<NoisySketch, CoreError>;

    /// Release a noisy sketch of a sparse vector (uses the transform's
    /// sparse fast path when it has one; densifies otherwise).
    ///
    /// # Errors
    /// [`CoreError::Transform`] on dimension mismatch.
    fn sketch_sparse(&self, x: &SparseVector, noise_seed: Seed) -> Result<NoisySketch, CoreError>;

    /// Input dimension `d`.
    fn input_dim(&self) -> usize;

    /// Sketch dimension `k`.
    fn k(&self) -> usize;

    /// The transform identity tag shared by every release.
    fn tag(&self) -> &str;

    /// The DP guarantee of each released sketch (every estimate computed
    /// from releases inherits it by post-processing).
    fn guarantee(&self) -> PrivacyGuarantee;

    /// The debias constant `2k·E[η²]` of the pairwise estimator.
    fn debias_constant(&self) -> f64;

    /// The construction's variance prediction at a hypothetical true
    /// squared distance (each construction's own closed form — exact
    /// where the paper gives an exact form, a bound otherwise).
    fn predicted_variance(&self, dist_sq: f64) -> DistanceEstimate;

    /// The serializable spec that rebuilds this exact sketcher anywhere.
    fn spec(&self) -> SketcherSpec;

    /// Add this construction's calibrated release noise to an externally
    /// maintained noiseless projection (e.g. a streaming accumulator over
    /// the same public transform) and package it under this sketcher's
    /// tag.
    ///
    /// # Errors
    /// [`CoreError::Transform`] if `projection` is not `k`-dimensional;
    /// [`CoreError::Unsupported`] for input-perturbation constructions,
    /// whose noise cannot be applied after the projection.
    fn finalize_projection(
        &self,
        projection: Vec<f64>,
        noise_seed: Seed,
    ) -> Result<NoisySketch, CoreError>;

    /// Debiased squared-distance estimate between two released sketches.
    ///
    /// # Errors
    /// [`CoreError::IncompatibleSketches`] if the sketches don't combine.
    fn estimate_sq_distance(&self, a: &NoisySketch, b: &NoisySketch) -> Result<f64, CoreError> {
        a.estimate_sq_distance(b)
    }

    /// Release one sketch per input row. Per-row noise seeds are derived
    /// as `noise_seed.index(row)`, so a batch consumes one private seed.
    ///
    /// The default implementation is the sequential reference;
    /// [`AnySketcher`] overrides it with the data-parallel
    /// [`sketch_batch_par`], which is bit-identical because the seed
    /// derivation depends only on the row index.
    ///
    /// # Errors
    /// [`CoreError::Transform`] on any dimension mismatch.
    fn sketch_batch(
        &self,
        xs: &[Vec<f64>],
        noise_seed: Seed,
    ) -> Result<Vec<NoisySketch>, CoreError> {
        sketch_batch_sequential(self, xs, noise_seed)
    }
}

/// The sequential reference implementation of
/// [`PrivateSketcher::sketch_batch`]: one row at a time, per-row noise
/// seed `noise_seed.index(row)`. The parallel path is tested bit-identical
/// against this.
///
/// # Errors
/// [`CoreError::Transform`] on any dimension mismatch.
pub fn sketch_batch_sequential<S: PrivateSketcher + ?Sized>(
    sketcher: &S,
    xs: &[Vec<f64>],
    noise_seed: Seed,
) -> Result<Vec<NoisySketch>, CoreError> {
    xs.iter()
        .enumerate()
        .map(|(i, x)| sketcher.sketch(x, noise_seed.index(i as u64)))
        .collect()
}

/// Data-parallel batch release: rows are split into contiguous chunks
/// across `par.threads()` workers. Bit-identical to
/// [`sketch_batch_sequential`] for every thread count, because each
/// row's noise seed is `noise_seed.index(row)` regardless of which
/// worker sketches it. On failure the error is the one the sequential
/// loop would have hit first (lowest failing row).
///
/// # Errors
/// [`CoreError::Transform`] on any dimension mismatch.
pub fn sketch_batch_par<S>(
    sketcher: &S,
    xs: &[Vec<f64>],
    noise_seed: Seed,
    par: &Parallelism,
) -> Result<Vec<NoisySketch>, CoreError>
where
    S: PrivateSketcher + Sync + ?Sized,
{
    if par.is_sequential() || xs.len() <= 1 {
        return sketch_batch_sequential(sketcher, xs, noise_seed);
    }
    let mut out: Vec<Option<NoisySketch>> = vec![None; xs.len()];
    par_chunks_mut(&mut out, par.threads(), |offset, chunk| {
        for (local, slot) in chunk.iter_mut().enumerate() {
            let row = offset + local;
            *slot = Some(sketcher.sketch(&xs[row], noise_seed.index(row as u64))?);
        }
        Ok::<(), CoreError>(())
    })?;
    Ok(out
        .into_iter()
        .map(|s| s.expect("every row filled"))
        .collect())
}

/// The constructions of the paper, as serializable data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Construction {
    /// Private SJLT with the Note 5 noise rule applied to the config
    /// (Laplace iff no δ is budgeted or `δ < e^{−s}`).
    SjltAuto,
    /// Private SJLT, Laplace noise forced (Theorem 3 as stated).
    SjltLaplace,
    /// Private SJLT, Gaussian noise forced (§6.2.3; requires δ).
    SjltGaussian,
    /// Output-perturbed private FJLT (Corollary 1; requires δ).
    FjltOutput,
    /// Input-perturbed private FJLT (Lemma 8; requires δ).
    FjltInput,
    /// Kenthapadi et al. baseline with the given σ calibration
    /// (requires δ).
    Kenthapadi(SigmaCalibration),
    /// Private Achlioptas sparse ±1 projection (reference [1]; Laplace
    /// noise without a δ budget, Gaussian with one). The second
    /// column-streaming construction after the SJLT.
    Achlioptas,
}

impl Construction {
    /// Stable wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::SjltAuto => "sjlt-auto",
            Self::SjltLaplace => "sjlt-laplace",
            Self::SjltGaussian => "sjlt-gaussian",
            Self::FjltOutput => "fjlt-output",
            Self::FjltInput => "fjlt-input",
            Self::Kenthapadi(SigmaCalibration::ExactSensitivity) => "kenthapadi-exact",
            Self::Kenthapadi(SigmaCalibration::Theorem1) => "kenthapadi-theorem1",
            Self::Kenthapadi(SigmaCalibration::AssumedUnit) => "kenthapadi-assumed-unit",
            Self::Achlioptas => "achlioptas",
        }
    }

    /// Parse a stable wire name.
    ///
    /// # Errors
    /// [`CoreError::Wire`] on an unknown name.
    pub fn from_name(name: &str) -> Result<Self, CoreError> {
        Ok(match name {
            "sjlt-auto" => Self::SjltAuto,
            "sjlt-laplace" => Self::SjltLaplace,
            "sjlt-gaussian" => Self::SjltGaussian,
            "fjlt-output" => Self::FjltOutput,
            "fjlt-input" => Self::FjltInput,
            "kenthapadi-exact" => Self::Kenthapadi(SigmaCalibration::ExactSensitivity),
            "kenthapadi-theorem1" => Self::Kenthapadi(SigmaCalibration::Theorem1),
            "kenthapadi-assumed-unit" => Self::Kenthapadi(SigmaCalibration::AssumedUnit),
            "achlioptas" => Self::Achlioptas,
            other => return Err(CoreError::Wire(format!("unknown construction '{other}'"))),
        })
    }

    /// Every concrete construction (with the baseline in its sound
    /// calibration) — handy for experiment sweeps.
    #[must_use]
    pub fn all() -> [Self; 7] {
        [
            Self::SjltAuto,
            Self::SjltLaplace,
            Self::SjltGaussian,
            Self::FjltOutput,
            Self::FjltInput,
            Self::Kenthapadi(SigmaCalibration::ExactSensitivity),
            Self::Achlioptas,
        ]
    }
}

/// Serializable public parameters rebuilding one exact sketcher:
/// construction + validated config + public transform seed, plus the
/// [`KernelId`] every estimate over this spec's releases runs under.
///
/// The kernel id is part of the spec identity because it changes
/// estimate *bits* (see [`crate::kernel`]): two replicas agreeing on a
/// spec agree on every matrix entry bit-for-bit, which is what the
/// coordinator's journal replay and the chaos suites assert.
#[derive(Debug, Clone, PartialEq)]
pub struct SketcherSpec {
    construction: Construction,
    config: SketchConfig,
    transform_seed: u64,
    kernel: KernelId,
}

impl SketcherSpec {
    /// Bundle a construction choice with shared public parameters. The
    /// kernel defaults from the environment knob (`DP_KERNEL`, V1
    /// scalar when unset) — override with [`SketcherSpec::with_kernel`].
    #[must_use]
    pub fn new(construction: Construction, config: SketchConfig, transform_seed: Seed) -> Self {
        Self {
            construction,
            config,
            transform_seed: transform_seed.value(),
            kernel: Parallelism::from_env().kernel(),
        }
    }

    /// Replace the distance-kernel version this spec pins.
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelId) -> Self {
        self.kernel = kernel;
        self
    }

    /// The distance-kernel version every estimate over this spec's
    /// releases runs under.
    #[must_use]
    pub fn kernel(&self) -> KernelId {
        self.kernel
    }

    /// Whether `other` names the same sketcher but a different kernel
    /// version — the case the protocol reports as `ERR_KERNEL` rather
    /// than a generic spec mismatch.
    #[must_use]
    pub fn differs_only_in_kernel(&self, other: &Self) -> bool {
        self.kernel != other.kernel && *self == other.clone().with_kernel(self.kernel)
    }

    /// The construction this spec selects.
    #[must_use]
    pub fn construction(&self) -> Construction {
        self.construction
    }

    /// The shared sketch configuration.
    #[must_use]
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// The public transform seed.
    #[must_use]
    pub fn transform_seed(&self) -> Seed {
        Seed::new(self.transform_seed)
    }

    /// Rebuild the sketcher this spec describes. Deterministic: every
    /// party calling this with an equal spec obtains an interoperable
    /// sketcher (identical transform, identical calibration).
    ///
    /// # Errors
    /// Propagates construction failures (e.g. a δ-requiring construction
    /// under a pure-DP config).
    pub fn build(&self) -> Result<AnySketcher, CoreError> {
        let mut sketcher =
            AnySketcher::new(self.construction, &self.config, self.transform_seed())?;
        // Keep the caller's exact spec (kernel id included) so
        // `sketcher.spec()` rebuilds this sketcher, not a variant.
        sketcher.spec = self.clone();
        Ok(sketcher)
    }

    /// [`SketcherSpec::build`] with an explicit [`Parallelism`] knob.
    /// Parallelism is an execution-side concern: it is *not* part of the
    /// spec identity, never travels on the wire, and never changes
    /// released values — only how batch work is scheduled.
    ///
    /// # Errors
    /// Propagates construction failures.
    pub fn build_with(&self, par: Parallelism) -> Result<AnySketcher, CoreError> {
        Ok(self.build()?.with_parallelism(par))
    }

    /// Serialize to the JSON wire format.
    #[must_use]
    pub fn to_json(&self) -> String {
        let cfg = &self.config;
        let jl = cfg.jl();
        let delta = cfg.delta().map_or(JsonValue::Null, JsonValue::Number);
        JsonValue::Object(vec![
            (
                "construction".to_string(),
                JsonValue::String(self.construction.name().to_string()),
            ),
            (
                "config".to_string(),
                JsonValue::Object(vec![
                    (
                        "input_dim".to_string(),
                        JsonValue::UInt(cfg.input_dim() as u64),
                    ),
                    ("alpha".to_string(), JsonValue::Number(jl.alpha())),
                    ("beta".to_string(), JsonValue::Number(jl.beta())),
                    ("epsilon".to_string(), JsonValue::Number(cfg.epsilon())),
                    ("delta".to_string(), delta),
                    ("k_const".to_string(), JsonValue::Number(jl.k_const())),
                    ("s_const".to_string(), JsonValue::Number(jl.s_const())),
                ]),
            ),
            (
                "transform_seed".to_string(),
                JsonValue::UInt(self.transform_seed),
            ),
            (
                "kernel".to_string(),
                JsonValue::String(self.kernel.name().to_string()),
            ),
        ])
        .to_string()
    }

    /// Parse the JSON wire format, re-validating the config.
    ///
    /// # Errors
    /// [`CoreError::Wire`] on malformed input; config validation errors
    /// on out-of-range parameters.
    pub fn from_json(text: &str) -> Result<Self, CoreError> {
        let v = json::parse(text).map_err(CoreError::Wire)?;
        let missing = |field: &str| CoreError::Wire(format!("missing/invalid field '{field}'"));
        let construction = Construction::from_name(
            v.get("construction")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| missing("construction"))?,
        )?;
        let cfg = v.get("config").ok_or_else(|| missing("config"))?;
        let num = |field: &str| -> Result<f64, CoreError> {
            cfg.get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| missing(field))
        };
        let input_dim = cfg
            .get("input_dim")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| missing("input_dim"))? as usize;
        let mut builder = SketchConfig::builder()
            .input_dim(input_dim)
            .alpha(num("alpha")?)
            .beta(num("beta")?)
            .epsilon(num("epsilon")?)
            .k_const(num("k_const")?)
            .s_const(num("s_const")?);
        match cfg.get("delta") {
            None => return Err(missing("delta")),
            Some(JsonValue::Null) => {}
            Some(d) => builder = builder.delta(d.as_f64().ok_or_else(|| missing("delta"))?),
        }
        let transform_seed = v
            .get("transform_seed")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| missing("transform_seed"))?;
        // Specs predating kernel versioning carry no `kernel` field;
        // they were minted by the V1-only codebase, so V1 it is.
        let kernel = match v.get("kernel") {
            None => KernelId::V1Scalar,
            Some(k) => k
                .as_str()
                .and_then(KernelId::parse)
                .ok_or_else(|| missing("kernel"))?,
        };
        Ok(Self {
            construction,
            config: builder.build()?,
            transform_seed,
            kernel,
        })
    }
}

/// The trait's canonical implementation: any of the paper's constructions
/// behind one type, rebuilt from a [`SketcherSpec`].
#[derive(Debug, Clone)]
pub struct AnySketcher {
    spec: SketcherSpec,
    inner: Inner,
    par: Parallelism,
}

#[derive(Debug, Clone)]
enum Inner {
    Sjlt(PrivateSjlt),
    FjltOutput(PrivateFjltOutput),
    FjltInput(PrivateFjltInput),
    Kenthapadi(Kenthapadi),
    Achlioptas(PrivateAchlioptas),
}

impl AnySketcher {
    /// Build a construction from shared public parameters.
    ///
    /// # Errors
    /// Propagates transform/noise construction failures.
    pub fn new(
        construction: Construction,
        config: &SketchConfig,
        transform_seed: Seed,
    ) -> Result<Self, CoreError> {
        let inner = match construction {
            Construction::SjltAuto => Inner::Sjlt(PrivateSjlt::new(config, transform_seed)?),
            Construction::SjltLaplace => {
                Inner::Sjlt(PrivateSjlt::with_laplace(config, transform_seed)?)
            }
            Construction::SjltGaussian => {
                Inner::Sjlt(PrivateSjlt::with_gaussian(config, transform_seed)?)
            }
            Construction::FjltOutput => {
                Inner::FjltOutput(PrivateFjltOutput::new(config, transform_seed)?)
            }
            Construction::FjltInput => {
                Inner::FjltInput(PrivateFjltInput::new(config, transform_seed)?)
            }
            Construction::Kenthapadi(calibration) => {
                Inner::Kenthapadi(Kenthapadi::new(config, calibration, transform_seed)?)
            }
            Construction::Achlioptas => {
                Inner::Achlioptas(PrivateAchlioptas::new(config, transform_seed)?)
            }
        };
        Ok(Self {
            spec: SketcherSpec::new(construction, config.clone(), transform_seed),
            inner,
            par: Parallelism::default(),
        })
    }

    /// Replace the execution knob (thread count, tile size). Released
    /// values are bit-identical for every setting; only scheduling
    /// changes.
    #[must_use]
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// The execution knob batch releases and callers can consult.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Rebuild from a spec (equivalent to [`SketcherSpec::build`]).
    ///
    /// # Errors
    /// Propagates construction failures.
    pub fn from_spec(spec: &SketcherSpec) -> Result<Self, CoreError> {
        spec.build()
    }

    /// The wrapped private SJLT, when this is an SJLT construction
    /// (gives access to the streaming-capable transform).
    #[must_use]
    pub fn as_sjlt(&self) -> Option<&PrivateSjlt> {
        match &self.inner {
            Inner::Sjlt(s) => Some(s),
            _ => None,
        }
    }

    /// The wrapped baseline, when this is the Kenthapadi construction.
    #[must_use]
    pub fn as_kenthapadi(&self) -> Option<&Kenthapadi> {
        match &self.inner {
            Inner::Kenthapadi(k) => Some(k),
            _ => None,
        }
    }

    /// The wrapped private Achlioptas sketcher, when this is the
    /// Achlioptas construction (gives access to the second
    /// streaming-capable transform).
    #[must_use]
    pub fn as_achlioptas(&self) -> Option<&PrivateAchlioptas> {
        match &self.inner {
            Inner::Achlioptas(a) => Some(a),
            _ => None,
        }
    }

    /// Short name of the noise family in effect.
    #[must_use]
    pub fn noise_name(&self) -> &'static str {
        match &self.inner {
            Inner::Sjlt(s) => s.noise_name(),
            Inner::Achlioptas(a) => a.noise_name(),
            Inner::FjltOutput(_) | Inner::FjltInput(_) | Inner::Kenthapadi(_) => "gaussian",
        }
    }

    /// The negotiated [`KernelId`] this sketcher computes under — part
    /// of the spec identity that travels on the wire, *not* the local
    /// execution knob. It governs both the distance accumulator and,
    /// since the batch kernels landed, the projection accumulators.
    #[must_use]
    pub fn kernel(&self) -> KernelId {
        self.spec.kernel()
    }

    /// The batchable projection structure, for constructions whose
    /// projection the batch kernels understand: column-sparse for the
    /// SJLT/Achlioptas, explicit dense matrix for Kenthapadi. `None`
    /// for the FJLT constructions — the in-place FWHT has no kernel
    /// variant, so both kernels produce its historic bits via the
    /// per-row path.
    fn batch_projection(&self) -> Option<kernel::BatchProjection<'_>> {
        match &self.inner {
            Inner::Sjlt(s) => Some(kernel::BatchProjection::Columns(s.general().transform())),
            Inner::Achlioptas(a) => Some(kernel::BatchProjection::Columns(a.general().transform())),
            Inner::Kenthapadi(kt) => {
                let t = kt.general().transform();
                Some(kernel::BatchProjection::Dense {
                    matrix: t.matrix(),
                    transform: t,
                })
            }
            Inner::FjltOutput(_) | Inner::FjltInput(_) => None,
        }
    }

    /// Kernel-aware noiseless projection `S·x`: the exact values this
    /// sketcher's [`PrivateSketcher::sketch`] adds noise to under the
    /// spec's kernel. External accumulators (and the bit-identity
    /// suites) pair it with [`PrivateSketcher::finalize_projection`] to
    /// reproduce a release.
    ///
    /// # Errors
    /// [`CoreError::Transform`] on dimension mismatch;
    /// [`CoreError::Unsupported`] for the input-perturbed FJLT, whose
    /// noise precedes the projection.
    pub fn project(&self, x: &[f64]) -> Result<Vec<f64>, CoreError> {
        match &self.inner {
            Inner::FjltOutput(s) => Ok(s.general().transform().apply(x)?),
            Inner::FjltInput(_) => Err(CoreError::Unsupported(
                "input-perturbed FJLT adds noise before the projection; \
                 it has no noiseless projection to expose",
            )),
            _ => {
                let p = self
                    .batch_projection()
                    .expect("non-FJLT constructions are batchable");
                let mut out = vec![0.0; self.k()];
                kernel::apply_projection(self.spec.kernel(), &p, x, &mut out)?;
                Ok(out)
            }
        }
    }

    /// Sketch batch rows `offset..offset + slots.len()` through the
    /// batch projection kernels in fixed-size blocks, filling `slots`.
    /// Per-row results are independent of block and chunk boundaries
    /// (V1 blocks are bit-frozen to the per-row loop; V2 rows never mix
    /// lanes), so every thread count and chunking yields one bit
    /// pattern.
    fn sketch_chunk_kernel(
        &self,
        xs: &[Vec<f64>],
        offset: usize,
        slots: &mut [Option<NoisySketch>],
        noise_seed: Seed,
    ) -> Result<(), CoreError> {
        const BLOCK: usize = 8;
        let k = self.k();
        let p = self
            .batch_projection()
            .expect("caller checked batchability");
        let mut scratch = vec![0.0f64; BLOCK * k];
        let mut start = 0;
        while start < slots.len() {
            let len = BLOCK.min(slots.len() - start);
            let rows: Vec<&[f64]> = xs[offset + start..offset + start + len]
                .iter()
                .map(Vec::as_slice)
                .collect();
            let buf = &mut scratch[..len * k];
            kernel::apply_batch(self.spec.kernel(), &p, &rows, buf)?;
            for (i, slot) in slots[start..start + len].iter_mut().enumerate() {
                let row = offset + start + i;
                let projection = buf[i * k..(i + 1) * k].to_vec();
                *slot = Some(self.finalize_projection(projection, noise_seed.index(row as u64))?);
            }
            start += len;
        }
        Ok(())
    }
}

impl PrivateSketcher for AnySketcher {
    fn sketch(&self, x: &[f64], noise_seed: Seed) -> Result<NoisySketch, CoreError> {
        // V2 routes the projection through the versioned kernels so a
        // single release, a batch release, and a streamed finalize all
        // produce one bit pattern under one kernel id. V1 keeps the
        // exact historic per-construction path (frozen bits).
        if self.spec.kernel() != KernelId::V1Scalar {
            if let Some(p) = self.batch_projection() {
                let mut projection = vec![0.0; self.k()];
                kernel::apply_projection(self.spec.kernel(), &p, x, &mut projection)?;
                return self.finalize_projection(projection, noise_seed);
            }
        }
        match &self.inner {
            Inner::Sjlt(s) => s.try_sketch(x, noise_seed),
            Inner::FjltOutput(s) => s.sketch(x, noise_seed),
            Inner::FjltInput(s) => s.sketch(x, noise_seed),
            Inner::Kenthapadi(s) => s.sketch(x, noise_seed),
            Inner::Achlioptas(s) => s.sketch(x, noise_seed),
        }
    }

    fn sketch_sparse(&self, x: &SparseVector, noise_seed: Seed) -> Result<NoisySketch, CoreError> {
        // Under V2 the column-streaming constructions keep their
        // O(s·‖x‖₀ + k) advantage through the fused sparse scatter.
        if self.spec.kernel() != KernelId::V1Scalar {
            let streaming: Option<&dyn dp_transforms::StreamingColumns> = match &self.inner {
                Inner::Sjlt(s) => Some(s.general().transform()),
                Inner::Achlioptas(a) => Some(a.general().transform()),
                _ => None,
            };
            if let Some(t) = streaming {
                let mut projection = vec![0.0; self.k()];
                kernel::v2_apply_columns_sparse(t, x, &mut projection)?;
                return self.finalize_projection(projection, noise_seed);
            }
        }
        match &self.inner {
            Inner::Sjlt(s) => s.sketch_sparse(x, noise_seed),
            Inner::Achlioptas(s) => s.sketch_sparse(x, noise_seed),
            // The dense constructions have no sparse fast path.
            _ => self.sketch(&x.to_dense(), noise_seed),
        }
    }

    fn input_dim(&self) -> usize {
        self.spec.config().input_dim()
    }

    fn k(&self) -> usize {
        match &self.inner {
            Inner::Sjlt(s) => s.k(),
            Inner::FjltOutput(s) => s.k(),
            Inner::FjltInput(s) => s.k(),
            Inner::Kenthapadi(s) => s.k(),
            Inner::Achlioptas(s) => s.k(),
        }
    }

    fn tag(&self) -> &str {
        match &self.inner {
            Inner::Sjlt(s) => s.general().tag(),
            Inner::FjltOutput(s) => s.general().tag(),
            Inner::FjltInput(s) => s.tag(),
            Inner::Kenthapadi(s) => s.general().tag(),
            Inner::Achlioptas(s) => s.general().tag(),
        }
    }

    fn guarantee(&self) -> PrivacyGuarantee {
        match &self.inner {
            Inner::Sjlt(s) => s.guarantee(),
            Inner::FjltOutput(s) => s.guarantee(),
            Inner::FjltInput(s) => s.guarantee(),
            Inner::Kenthapadi(s) => s.guarantee(),
            Inner::Achlioptas(s) => s.guarantee(),
        }
    }

    fn debias_constant(&self) -> f64 {
        match &self.inner {
            Inner::Sjlt(s) => s.general().debias_constant(),
            Inner::FjltOutput(s) => s.general().debias_constant(),
            // Effective moment: 2k·(dσ²/k) = 2dσ² (see fjlt_private docs).
            Inner::FjltInput(s) => 2.0 * s.d() as f64 * s.sigma() * s.sigma(),
            Inner::Kenthapadi(s) => s.general().debias_constant(),
            Inner::Achlioptas(s) => s.general().debias_constant(),
        }
    }

    fn predicted_variance(&self, dist_sq: f64) -> DistanceEstimate {
        match &self.inner {
            Inner::Sjlt(s) => s.variance_bound(dist_sq),
            Inner::FjltOutput(s) => s.variance_bound(dist_sq),
            Inner::FjltInput(s) => s.variance_bound(dist_sq),
            Inner::Kenthapadi(s) => s.variance(dist_sq),
            Inner::Achlioptas(s) => s.variance_bound(dist_sq),
        }
    }

    fn spec(&self) -> SketcherSpec {
        self.spec.clone()
    }

    fn finalize_projection(
        &self,
        projection: Vec<f64>,
        noise_seed: Seed,
    ) -> Result<NoisySketch, CoreError> {
        match &self.inner {
            Inner::Sjlt(s) => s.general().finalize(projection, noise_seed),
            Inner::FjltOutput(s) => s.general().finalize(projection, noise_seed),
            Inner::Kenthapadi(s) => s.general().finalize(projection, noise_seed),
            Inner::Achlioptas(s) => s.general().finalize(projection, noise_seed),
            Inner::FjltInput(_) => Err(CoreError::Unsupported(
                "input-perturbed FJLT adds noise before the projection; \
                 it cannot finalize an externally maintained projection",
            )),
        }
    }

    fn sketch_batch(
        &self,
        xs: &[Vec<f64>],
        noise_seed: Seed,
    ) -> Result<Vec<NoisySketch>, CoreError> {
        if self.batch_projection().is_none() {
            // FJLT constructions: the FWHT has no batch kernel; the
            // per-row data-parallel path is already their fastest form.
            return sketch_batch_par(self, xs, noise_seed, &self.par);
        }
        // Kernel-aware batching: rows chunked across workers, each
        // chunk projected block-at-a-time through `kernel::apply_batch`
        // and finalized with the unchanged per-row noise seed
        // `noise_seed.index(row)` — bit-identical to the per-row path
        // for every thread count and batch size, in both kernels.
        let mut out: Vec<Option<NoisySketch>> = vec![None; xs.len()];
        if self.par.is_sequential() || xs.len() <= 1 {
            self.sketch_chunk_kernel(xs, 0, &mut out, noise_seed)?;
        } else {
            par_chunks_mut(&mut out, self.par.threads(), |offset, chunk| {
                self.sketch_chunk_kernel(xs, offset, chunk, noise_seed)
            })?;
        }
        Ok(out
            .into_iter()
            .map(|s| s.expect("every row filled"))
            .collect())
    }
}

/// All pairwise debiased squared-distance estimates, as a flat row-major
/// `n × n` matrix (symmetric, zero diagonal).
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseDistances {
    n: usize,
    values: Vec<f64>,
}

impl PairwiseDistances {
    /// Number of sketches (matrix side length).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The estimate for pair `(i, j)`.
    ///
    /// # Panics
    /// If `i` or `j` is out of range.
    #[must_use]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of {}",
            self.n
        );
        self.values[i * self.n + j]
    }

    /// The flat row-major buffer (length `n²`).
    #[must_use]
    pub fn as_flat(&self) -> &[f64] {
        &self.values
    }

    /// Consume into the flat row-major buffer.
    #[must_use]
    pub fn into_flat(self) -> Vec<f64> {
        self.values
    }

    /// Wrap an externally assembled flat row-major `n × n` buffer (the
    /// inverse of [`PairwiseDistances::into_flat`]; used by the
    /// `dp-engine` incremental cache).
    ///
    /// # Panics
    /// If `values.len() != n²`.
    #[must_use]
    pub fn from_flat(n: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), n * n, "flat buffer must be n² long");
        Self { n, values }
    }
}

/// Estimate every pairwise squared distance among released sketches,
/// using the tiled kernel on the environment-default [`Parallelism`].
///
/// # Errors
/// [`CoreError::IncompatibleSketches`] if any sketch doesn't combine
/// with the first (see [`pairwise_sq_distances_with_par`] for how this
/// sweep relates to the reference's per-pair check).
pub fn pairwise_sq_distances(sketches: &[NoisySketch]) -> Result<PairwiseDistances, CoreError> {
    pairwise_sq_distances_with(sketches, |s| s)
}

/// [`pairwise_sq_distances`] over any slice whose items carry a sketch
/// (e.g. protocol `Release`s), without copying the sketches out.
///
/// # Errors
/// [`CoreError::IncompatibleSketches`] if any sketch doesn't combine
/// with the first (see [`pairwise_sq_distances_with_par`]).
pub fn pairwise_sq_distances_with<T: Sync>(
    items: &[T],
    sketch_of: impl Fn(&T) -> &NoisySketch + Sync,
) -> Result<PairwiseDistances, CoreError> {
    pairwise_sq_distances_with_par(items, sketch_of, &Parallelism::default())
}

// dp-lint: freeze(pairwise-reference) begin
/// The naive sequential double loop over
/// [`NoisySketch::estimate_sq_distance`] — kept as the reference
/// implementation the tiled kernel is tested bit-identical against.
///
/// # Errors
/// [`CoreError::IncompatibleSketches`] if any pair doesn't combine.
pub fn pairwise_sq_distances_reference(
    sketches: &[NoisySketch],
) -> Result<PairwiseDistances, CoreError> {
    let n = sketches.len();
    let mut values = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let est = sketches[i].estimate_sq_distance(&sketches[j])?;
            values[i * n + j] = est;
            values[j * n + i] = est;
        }
    }
    Ok(PairwiseDistances { n, values })
}
// dp-lint: freeze(pairwise-reference) end

/// The cache-blocked tile kernel behind the all-pairs surface.
///
/// The matrix's upper triangle is decomposed by a
/// [`TileScheduler`] into `par.tile()`-sided `(row_block, col_block)`
/// tasks. All upper-triangle estimates land in **one flat buffer**
/// (tiles map to contiguous segments via a pair-count prefix sum);
/// workers take contiguous tile groups balanced by pair count — static
/// partitioning is well balanced here because per-pair cost is uniform
/// in `k` — and write their segments directly, then a sequential pass
/// scatters (plus mirrors) into the row-major matrix. Per-sketch
/// invariants are hoisted out
/// of the inner loop: compatibility is checked once per sketch against
/// the first (n−1 checks instead of one per pair), and each sketch's
/// debias constant `2k·E[η²]` is computed once per *row* instead of
/// once per pair. Debias stays per-row (not a single batch constant)
/// because [`NoisySketch::check_compatible`] tolerates tiny `E[η²]`
/// differences; using row `i`'s own constant reproduces the reference
/// bit-for-bit even for such hand-built batches.
///
/// Bit-identical to [`pairwise_sq_distances_reference`] for every
/// thread count and tile size: each pair is computed exactly once, by
/// the same zip-order sum and the same `raw − 2k·E[η²]` expression the
/// per-pair estimator uses.
///
/// # Errors
/// [`CoreError::IncompatibleSketches`] if the batch doesn't combine:
/// each sketch is checked against the first (pinning the transform tag
/// and `k` exactly, which are transitive), and the *span* of noise
/// moments across the batch must itself fit the compatibility
/// tolerance — so any batch the per-pair reference would reject is
/// rejected here too (never silently accepted). The one divergence is
/// a sliver on the tolerance boundary where this check is marginally
/// *stricter* than the reference, and which pair an error names.
/// Batches released by one sketcher — the only kind the workspace
/// produces — carry identical moments, where the two checks agree
/// exactly.
pub fn pairwise_sq_distances_with_par<'a, T: Sync>(
    items: &'a [T],
    sketch_of: impl Fn(&'a T) -> &'a NoisySketch + Sync,
    par: &Parallelism,
) -> Result<PairwiseDistances, CoreError> {
    let n = items.len();
    if n == 0 {
        return Ok(PairwiseDistances {
            n: 0,
            values: Vec::new(),
        });
    }
    // Hoisted invariants: one compatibility sweep pins the transform
    // tag, k, and noise moment for the whole batch, and each row's
    // debias constant is evaluated once here — the inner loop is a pure
    // fused subtract-square-accumulate over the value slices. The
    // constant is per-row (row i's own E[η²], exactly what the per-pair
    // estimator uses for the (i, j), i < j pair), which keeps the
    // bit-identity contract even when moments differ within tolerance.
    let first = sketch_of(&items[0]);
    let mut m2_min = first.noise_second_moment();
    let mut m2_max = m2_min;
    for item in items.iter().skip(1) {
        let s = sketch_of(item);
        first.check_compatible(s)?;
        m2_min = m2_min.min(s.noise_second_moment());
        m2_max = m2_max.max(s.noise_second_moment());
    }
    // The vs-first sweep alone would admit moments at opposite edges of
    // the tolerance band (a pair the per-pair reference rejects); bound
    // the batch *span* by the tolerance at its weakest scale so every
    // pair provably passes the per-pair check.
    if (m2_max - m2_min).abs() > 1e-12 * (1.0 + m2_min.abs()) {
        return Err(CoreError::IncompatibleSketches(format!(
            "noise moment span {m2_min} vs {m2_max} exceeds the batch tolerance"
        )));
    }
    let debias: Vec<f64> = items
        .iter()
        .map(|item| {
            let s = sketch_of(item);
            2.0 * s.k() as f64 * s.noise_second_moment()
        })
        .collect();
    Ok(pairwise_sq_distances_rows(
        n,
        |i| sketch_of(&items[i]).values(),
        &debias,
        par,
    ))
}

/// The raw tiled kernel over row slices: pair `(i, j)`, `i < j`, is
/// `Σ (row_i − row_j)² − debias[i]`, written symmetrically into a flat
/// row-major matrix with a zero diagonal. This is the layer shared by
/// [`pairwise_sq_distances_with_par`] (which first validates sketch
/// compatibility and hoists the debias constants) and the `dp-engine`
/// sketch store (whose flat arena validates at ingest time); both are
/// bit-identical to [`pairwise_sq_distances_reference`] because the
/// inner expression is exactly the per-pair estimator's.
///
/// # Panics
/// If `debias.len() != n` or any row slice is shorter than row 0 (rows
/// must all have the sketch dimension `k`; callers validate).
pub fn pairwise_sq_distances_rows<'a, R>(
    n: usize,
    row_values: R,
    debias: &[f64],
    par: &Parallelism,
) -> PairwiseDistances
where
    R: Fn(usize) -> &'a [f64] + Sync,
{
    assert_eq!(debias.len(), n, "one debias constant per row");
    if n == 0 {
        return PairwiseDistances {
            n: 0,
            values: Vec::new(),
        };
    }
    // One flat allocation for the whole upper triangle; tile → segment
    // via the plan's pair-count prefix sums.
    let plan = effective_plan(n, par);
    let tiles: Vec<Tile> = plan.tiles().map(|(_, t)| t).collect();
    let offsets = plan.segment_offsets();
    let total = plan.pair_count();
    let mut flat = vec![0.0f64; total];

    // Contiguous tile groups, one per worker, balanced by pair count
    // (diagonal tiles hold half the pairs of off-diagonal ones, so
    // balancing by tile count would skew) — the same cut the plan hands
    // remote shards, applied to local threads.
    let workers = par.threads().min(tiles.len()).max(1);
    let groups = plan.shard(workers);
    let boundaries: Vec<usize> = groups[..groups.len() - 1]
        .iter()
        .map(|g| offsets[g.end])
        .collect();

    let kernel = par.kernel();
    par_split_mut(&mut flat, &boundaries, |group, _, segment| {
        let mut w = 0usize;
        for tile in &tiles[groups[group].clone()] {
            let len = tile.pair_count();
            fill_tile_segment(tile, &row_values, debias, kernel, &mut segment[w..w + len]);
            w += len;
        }
        debug_assert_eq!(w, segment.len(), "group fills its segment exactly");
    });

    let mut values = vec![0.0; n * n];
    for (tile, &start) in tiles.iter().zip(&offsets) {
        scatter_tile_segment(
            tile,
            &flat[start..start + tile.pair_count()],
            n,
            &mut values,
        );
    }
    PairwiseDistances { n, values }
}

/// The plan `pairwise_sq_distances_rows` executes for `(n, par)`: tiles
/// of side `par.tile()`, capped when several workers are requested so
/// the plan emits enough tiles to feed them on small matrices — results
/// are tile-size independent, so the cap only changes scheduling
/// (`DP_TILE` acts as an upper bound).
#[must_use]
pub fn effective_plan(n: usize, par: &Parallelism) -> TilePlan {
    let tile = if par.threads() > 1 {
        par.tile().min(n.div_ceil(2 * par.threads()).max(1))
    } else {
        par.tile()
    };
    TilePlan::new(n, tile)
}

/// The kernel's per-tile inner loop: write the tile's `(i, j)`, `i < j`
/// pair estimates into `out` in row-major order under the given
/// [`KernelId`]. One shared function is what keeps the local kernel,
/// the remote tile executor, and therefore every gathered matrix
/// bit-identical (within a kernel version).
///
/// Both `row_values` lookups are hoisted out of the pair loop: every
/// column slice is resolved once per tile (not once per pair) and each
/// row slice plus its debias constant once per row. The hoists change
/// no arithmetic — the per-pair expression is exactly
/// [`kernel::sq_distance`] minus `debias[i]` — so V1 bit patterns are
/// untouched (guarded by the bit-identity suites).
fn fill_tile_segment<'a, R>(
    tile: &Tile,
    row_values: &R,
    debias: &[f64],
    kernel: KernelId,
    out: &mut [f64],
) where
    R: Fn(usize) -> &'a [f64],
{
    let cols: Vec<&'a [f64]> = tile.cols().map(row_values).collect();
    let col_start = tile.cols().start;
    let mut w = 0usize;
    for i in tile.rows() {
        let a = row_values(i);
        let debias_i = debias[i];
        for j in tile.cols() {
            if j <= i {
                continue;
            }
            let raw = kernel::sq_distance(kernel, a, cols[j - col_start]);
            out[w] = raw - debias_i;
            w += 1;
        }
    }
    debug_assert_eq!(w, out.len(), "tile fills its segment exactly");
}

/// Scatter one tile's row-major segment (plus its mirror) into a flat
/// `n × n` matrix — the inverse of [`fill_tile_segment`]'s walk, shared
/// by the local kernel and the `dp-engine` gather assembler.
pub fn scatter_tile_segment(tile: &Tile, segment: &[f64], n: usize, values: &mut [f64]) {
    let mut idx = 0usize;
    for i in tile.rows() {
        for j in tile.cols() {
            if j <= i {
                continue;
            }
            let est = segment[idx];
            idx += 1;
            values[i * n + j] = est;
            values[j * n + i] = est;
        }
    }
    debug_assert_eq!(idx, segment.len(), "segment length matches the tile");
}

/// Execute an explicit set of a plan's tiles over row slices, returning
/// one [`TileSegment`] per id (in the given order). This is the remote
/// half of the plan → execute → gather pipeline: a worker server runs
/// exactly this over its own store and ships the segments back keyed by
/// tile id, and the result is bit-identical to the local kernel because
/// both run [`fill_tile_segment`].
///
/// Tiles are executed as dynamic tasks on `par.threads()` workers;
/// output order is id-list order regardless of scheduling.
///
/// # Panics
/// If `debias.len() != plan.n()` or an id is outside the plan (callers
/// validate ids against [`TilePlan::tile_count`] first — the engine and
/// protocol layers return typed errors instead).
pub fn execute_tiles<'a, R>(
    plan: &TilePlan,
    ids: &[u64],
    row_values: R,
    debias: &[f64],
    par: &Parallelism,
) -> Vec<TileSegment>
where
    R: Fn(usize) -> &'a [f64] + Sync,
{
    assert_eq!(debias.len(), plan.n(), "one debias constant per row");
    let kernel = par.kernel();
    par_map(ids, par.threads(), |_, &tile_id| {
        let tile = plan
            .tile_at(usize::try_from(tile_id).expect("id fits usize"))
            .expect("tile id validated against the plan");
        let mut values = vec![0.0f64; tile.pair_count()];
        fill_tile_segment(&tile, &row_values, debias, kernel, &mut values);
        TileSegment { tile_id, values }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_stats::Summary;
    use dp_transforms::LinearTransform;

    fn config(delta: Option<f64>) -> SketchConfig {
        let mut b = SketchConfig::builder()
            .input_dim(48)
            .alpha(0.3)
            .beta(0.1)
            .epsilon(1.5);
        if let Some(d) = delta {
            b = b.delta(d);
        }
        b.build().unwrap()
    }

    #[test]
    fn every_construction_builds_and_sketches() {
        let cfg = config(Some(1e-6));
        let x = vec![1.0; 48];
        for construction in Construction::all() {
            let sk = AnySketcher::new(construction, &cfg, Seed::new(3)).unwrap();
            let a = sk.sketch(&x, Seed::new(10)).unwrap();
            let b = sk.sketch(&x, Seed::new(11)).unwrap();
            assert_eq!(a.k(), sk.k(), "{construction:?}");
            assert_eq!(a.transform_tag(), sk.tag());
            let est = sk.estimate_sq_distance(&a, &b).unwrap();
            assert!(est.is_finite(), "{construction:?}");
            assert!(sk.debias_constant() >= 0.0);
            assert!(sk.predicted_variance(1.0).predicted_variance > 0.0);
        }
    }

    #[test]
    fn pure_dp_config_rejects_delta_constructions() {
        let cfg = config(None);
        for construction in [
            Construction::SjltGaussian,
            Construction::FjltOutput,
            Construction::FjltInput,
            Construction::Kenthapadi(SigmaCalibration::ExactSensitivity),
        ] {
            assert!(
                matches!(
                    AnySketcher::new(construction, &cfg, Seed::new(1)),
                    Err(CoreError::MissingField("delta"))
                ),
                "{construction:?}"
            );
        }
        // The pure-DP constructions still work.
        assert!(AnySketcher::new(Construction::SjltAuto, &cfg, Seed::new(1)).is_ok());
        assert!(AnySketcher::new(Construction::SjltLaplace, &cfg, Seed::new(1)).is_ok());
    }

    #[test]
    fn spec_roundtrips_through_json() {
        for (construction, delta) in [
            (Construction::SjltAuto, None),
            (Construction::SjltLaplace, None),
            (Construction::FjltInput, Some(1e-7)),
            (
                Construction::Kenthapadi(SigmaCalibration::Theorem1),
                Some(1e-7),
            ),
        ] {
            let spec = SketcherSpec::new(construction, config(delta), Seed::new(42));
            let text = spec.to_json();
            let back = SketcherSpec::from_json(&text).unwrap();
            assert_eq!(spec, back, "{construction:?}");
        }
        assert!(SketcherSpec::from_json("{}").is_err());
        assert!(SketcherSpec::from_json("not json").is_err());
    }

    #[test]
    fn spec_rebuilds_interoperable_sketchers() {
        let cfg = config(Some(1e-6));
        for construction in Construction::all() {
            let spec = SketcherSpec::new(construction, cfg.clone(), Seed::new(7));
            let party_a = spec.build().unwrap();
            let party_b = SketcherSpec::from_json(&spec.to_json())
                .unwrap()
                .build()
                .unwrap();
            let x = vec![0.5; 48];
            let y = vec![0.25; 48];
            let sa = party_a.sketch(&x, Seed::new(100)).unwrap();
            let sb = party_b.sketch(&y, Seed::new(200)).unwrap();
            // Different parties, same spec → combinable releases.
            assert!(sa.estimate_sq_distance(&sb).is_ok(), "{construction:?}");
        }
    }

    #[test]
    fn cross_construction_sketches_refused() {
        let cfg = config(Some(1e-6));
        let x = vec![1.0; 48];
        let sketchers: Vec<AnySketcher> = Construction::all()
            .into_iter()
            .map(|c| AnySketcher::new(c, &cfg, Seed::new(5)).unwrap())
            .collect();
        let sketches: Vec<NoisySketch> = sketchers
            .iter()
            .map(|s| s.sketch(&x, Seed::new(9)).unwrap())
            .collect();
        for i in 0..sketches.len() {
            for j in 0..sketches.len() {
                let est = sketches[i].estimate_sq_distance(&sketches[j]);
                if sketchers[i].tag() == sketchers[j].tag() {
                    assert!(est.is_ok());
                } else {
                    assert!(
                        matches!(est, Err(CoreError::IncompatibleSketches(_))),
                        "({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn trait_objects_are_usable() {
        let cfg = config(Some(1e-6));
        let boxed: Vec<Box<dyn PrivateSketcher>> = vec![
            Box::new(AnySketcher::new(Construction::SjltLaplace, &cfg, Seed::new(1)).unwrap()),
            Box::new(
                AnySketcher::new(
                    Construction::Kenthapadi(SigmaCalibration::ExactSensitivity),
                    &cfg,
                    Seed::new(1),
                )
                .unwrap(),
            ),
        ];
        let x = vec![1.0; 48];
        for sk in &boxed {
            let a = sk.sketch(&x, Seed::new(2)).unwrap();
            let b = sk.sketch(&x, Seed::new(3)).unwrap();
            assert!(sk.estimate_sq_distance(&a, &b).unwrap().is_finite());
            assert_eq!(sk.spec().build().unwrap().k(), sk.k());
        }
    }

    #[test]
    fn sketch_batch_derives_fresh_noise_per_row() {
        let cfg = config(None);
        let sk = AnySketcher::new(Construction::SjltLaplace, &cfg, Seed::new(1)).unwrap();
        let rows = vec![vec![1.0; 48], vec![1.0; 48], vec![0.0; 48]];
        let sketches = sk.sketch_batch(&rows, Seed::new(77)).unwrap();
        assert_eq!(sketches.len(), 3);
        // Identical inputs, distinct derived noise seeds → distinct noise.
        assert_ne!(sketches[0], sketches[1]);
        // Deterministic: the same batch seed reproduces the batch.
        assert_eq!(sketches, sk.sketch_batch(&rows, Seed::new(77)).unwrap());
    }

    #[test]
    fn batch_and_pairwise_estimate_distances() {
        let cfg = SketchConfig::builder()
            .input_dim(256)
            .alpha(0.25)
            .beta(0.05)
            .epsilon(2.0)
            .build()
            .unwrap();
        let d = 256;
        let rows = vec![vec![0.0; d], vec![1.0; d], {
            let mut v = vec![0.0; d];
            v[0] = 1.0;
            v
        }];
        let mut d01 = Summary::new();
        let mut d02 = Summary::new();
        for rep in 0..300u64 {
            let sk = AnySketcher::new(Construction::SjltAuto, &cfg, Seed::new(rep)).unwrap();
            let sketches = sk.sketch_batch(&rows, Seed::new(1000 + rep)).unwrap();
            let m = pairwise_sq_distances(&sketches).unwrap();
            assert_eq!(m.n(), 3);
            assert_eq!(m.as_flat().len(), 9);
            assert_eq!(m.at(0, 1), m.at(1, 0), "symmetry");
            assert_eq!(m.at(2, 2), 0.0, "diagonal");
            d01.push(m.at(0, 1));
            d02.push(m.at(0, 2));
        }
        assert!(
            (d01.mean() - 256.0).abs() / d01.stderr() < 4.0,
            "{}",
            d01.mean()
        );
        assert!(
            (d02.mean() - 1.0).abs() / d02.stderr() < 4.0,
            "{}",
            d02.mean()
        );
    }

    #[test]
    fn finalize_projection_matches_direct_sketch_for_output_noise() {
        let cfg = config(None);
        let sk = AnySketcher::new(Construction::SjltLaplace, &cfg, Seed::new(2)).unwrap();
        let x: Vec<f64> = (0..48).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        // The kernel-aware noiseless projection, finalized, must equal a
        // direct sketch under the same noise seed — in both kernel lanes.
        let projection = sk.project(&x).unwrap();
        let via_finalize = sk.finalize_projection(projection, Seed::new(9)).unwrap();
        let direct = sk.sketch(&x, Seed::new(9)).unwrap();
        assert_eq!(via_finalize, direct);
        // Under V1 the projection is the historic transform apply,
        // bit-for-bit.
        let v1 = sk.spec().with_kernel(KernelId::V1Scalar).build().unwrap();
        let historic = v1
            .as_sjlt()
            .unwrap()
            .general()
            .transform()
            .apply(&x)
            .unwrap();
        for (a, b) in v1.project(&x).unwrap().iter().zip(&historic) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Wrong length rejected; input-perturbed construction refuses.
        assert!(sk.finalize_projection(vec![0.0; 3], Seed::new(1)).is_err());
        let fin =
            AnySketcher::new(Construction::FjltInput, &config(Some(1e-6)), Seed::new(2)).unwrap();
        assert!(matches!(
            fin.finalize_projection(vec![0.0; fin.k()], Seed::new(1)),
            Err(CoreError::Unsupported(_))
        ));
    }

    /// Deterministic pseudo-random rows for equivalence tests.
    fn rows(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        use dp_hashing::Prng;
        let mut rng = Seed::new(seed).rng();
        (0..n)
            .map(|_| (0..d).map(|_| rng.next_f64() * 4.0 - 2.0).collect())
            .collect()
    }

    #[test]
    fn batch_and_per_row_sketches_bit_identical_in_both_kernels() {
        let cfg = config(Some(1e-6));
        for construction in Construction::all() {
            for kernel in [KernelId::V1Scalar, KernelId::V2Simd] {
                let spec =
                    SketcherSpec::new(construction, cfg.clone(), Seed::new(3)).with_kernel(kernel);
                let sk = spec.build().unwrap();
                // Ragged batch sizes around the internal block: empty,
                // single, and non-multiples of the block width.
                for n in [0usize, 1, 7, 9] {
                    let xs = rows(n, 48, 21);
                    let batch = sk.sketch_batch(&xs, Seed::new(5)).unwrap();
                    for (i, x) in xs.iter().enumerate() {
                        let single = sk.sketch(x, Seed::new(5).index(i as u64)).unwrap();
                        assert_eq!(
                            batch[i], single,
                            "{construction:?} {kernel:?} n={n} row {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_sketch_batch_is_bit_identical_to_sequential() {
        let cfg = config(Some(1e-6));
        for construction in Construction::all() {
            let sk = AnySketcher::new(construction, &cfg, Seed::new(3)).unwrap();
            let xs = rows(7, 48, 11);
            let reference = sketch_batch_sequential(&sk, &xs, Seed::new(5)).unwrap();
            for threads in [1usize, 2, 3, 8] {
                let par =
                    sketch_batch_par(&sk, &xs, Seed::new(5), &Parallelism::new(threads)).unwrap();
                assert_eq!(par.len(), reference.len());
                for (a, b) in reference.iter().zip(&par) {
                    assert_eq!(a, b, "{construction:?}, threads = {threads}");
                    for (x, y) in a.values().iter().zip(b.values()) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn trait_batch_routes_through_the_knob() {
        let cfg = config(None);
        let xs = rows(5, 48, 2);
        let seq = AnySketcher::new(Construction::SjltLaplace, &cfg, Seed::new(1))
            .unwrap()
            .with_parallelism(Parallelism::sequential());
        let par = seq.clone().with_parallelism(Parallelism::new(4));
        assert_eq!(par.parallelism().threads(), 4);
        assert_eq!(
            seq.sketch_batch(&xs, Seed::new(9)).unwrap(),
            par.sketch_batch(&xs, Seed::new(9)).unwrap()
        );
    }

    #[test]
    fn tiled_pairwise_is_bit_identical_to_reference() {
        let cfg = config(None);
        let sk = AnySketcher::new(Construction::SjltAuto, &cfg, Seed::new(8)).unwrap();
        for n in [0usize, 1, 2, 3, 5, 13] {
            let sketches = sk
                .sketch_batch(&rows(n, 48, n as u64), Seed::new(21))
                .unwrap();
            let reference = pairwise_sq_distances_reference(&sketches).unwrap();
            for threads in [1usize, 2, 5] {
                for tile in [1usize, 2, 3, 4, 7, 64] {
                    let tiled = pairwise_sq_distances_with_par(
                        &sketches,
                        |s| s,
                        &Parallelism::new(threads).with_tile(tile),
                    )
                    .unwrap();
                    assert_eq!(tiled.n(), reference.n());
                    for (a, b) in reference.as_flat().iter().zip(tiled.as_flat()) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "n = {n}, threads = {threads}, tile = {tile}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tiled_pairwise_uses_each_rows_own_debias_constant() {
        // check_compatible tolerates relative E[η²] differences up to
        // 1e-12; a hand-built batch exercising that tolerance must
        // still match the reference bit-for-bit, which requires the
        // kernel to debias with row i's own constant, not the first's.
        let m2 = 0.5;
        let m2_perturbed = m2 * (1.0 + 5e-13);
        let sketches = vec![
            NoisySketch::new(vec![1.0, 2.0, 3.0], "t", m2, 0.75),
            NoisySketch::new(vec![0.5, -1.0, 2.0], "t", m2_perturbed, 0.75),
            NoisySketch::new(vec![-2.0, 0.0, 1.5], "t", m2, 0.75),
        ];
        assert_ne!(m2.to_bits(), m2_perturbed.to_bits());
        let reference = pairwise_sq_distances_reference(&sketches).unwrap();
        for threads in [1usize, 4] {
            let tiled = pairwise_sq_distances_with_par(
                &sketches,
                |s| s,
                &Parallelism::new(threads).with_tile(2),
            )
            .unwrap();
            for (a, b) in reference.as_flat().iter().zip(tiled.as_flat()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn pairwise_rejects_moment_spans_the_reference_rejects() {
        // Each perturbed moment passes the vs-first check, but the
        // extreme pair (1, 2) exceeds the per-pair tolerance, so the
        // reference rejects the batch — the tiled kernel's span check
        // must reject it too, never silently accept.
        let m2 = 0.5;
        let sketches = vec![
            NoisySketch::new(vec![1.0, 2.0], "t", m2, 0.75),
            NoisySketch::new(vec![0.5, 1.0], "t", m2 + 1.2e-12, 0.75),
            NoisySketch::new(vec![0.0, 1.5], "t", m2 - 1.2e-12, 0.75),
        ];
        assert!(matches!(
            pairwise_sq_distances_reference(&sketches),
            Err(CoreError::IncompatibleSketches(_))
        ));
        for threads in [1usize, 4] {
            assert!(
                matches!(
                    pairwise_sq_distances_with_par(&sketches, |s| s, &Parallelism::new(threads)),
                    Err(CoreError::IncompatibleSketches(_))
                ),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn pairwise_rejects_incompatible_batches_like_the_reference() {
        let cfg = config(None);
        let a = AnySketcher::new(Construction::SjltAuto, &cfg, Seed::new(1)).unwrap();
        let b = AnySketcher::new(Construction::SjltAuto, &cfg, Seed::new(2)).unwrap();
        let xs = rows(2, 48, 3);
        let mut sketches = a.sketch_batch(&xs, Seed::new(4)).unwrap();
        sketches.extend(b.sketch_batch(&xs, Seed::new(5)).unwrap());
        assert!(matches!(
            pairwise_sq_distances_reference(&sketches),
            Err(CoreError::IncompatibleSketches(_))
        ));
        assert!(matches!(
            pairwise_sq_distances(&sketches),
            Err(CoreError::IncompatibleSketches(_))
        ));
    }

    #[test]
    fn spec_build_with_sets_the_knob() {
        let spec = SketcherSpec::new(Construction::SjltAuto, config(None), Seed::new(6));
        let sk = spec.build_with(Parallelism::new(3).with_tile(16)).unwrap();
        assert_eq!(sk.parallelism().threads(), 3);
        assert_eq!(sk.parallelism().tile(), 16);
        // The knob never leaks into the serialized spec.
        assert_eq!(sk.spec().to_json(), spec.to_json());
    }

    #[test]
    fn note5_applies_uniformly_through_the_trait() {
        // Auto under pure DP → Laplace; auto under a generous δ → Gaussian.
        let pure = AnySketcher::new(Construction::SjltAuto, &config(None), Seed::new(1)).unwrap();
        assert_eq!(pure.noise_name(), "laplace");
        assert!(pure.guarantee().is_pure());
        let approx =
            AnySketcher::new(Construction::SjltAuto, &config(Some(1e-4)), Seed::new(1)).unwrap();
        assert_eq!(approx.noise_name(), "gaussian");
        assert!(!approx.guarantee().is_pure());
    }
}
