//! Closed-form variance predictors and the §7 crossover solvers.
//!
//! These are the quantitative claims of the paper, written as code so the
//! experiment harness can print paper-vs-measured rows:
//!
//! * Lemma 3 (exact, any LPP transform × any zero-mean noise):
//!   `Var[Ê] = Var[‖Sz‖²] + 8·E[η²]·‖z‖² + 2k·E[η⁴] + 2k·E[η²]²`.
//! * Theorem 2 (i.i.d. Gaussian transform + Gaussian noise, exact):
//!   `Var = (2/k)‖z‖⁴ + 8σ²‖z‖² + 8σ⁴k`.
//! * Lemma 10 (SJLT transform term, exact): `(2/k)(‖z‖₂⁴ − ‖z‖₄⁴)`.
//! * Lemma 7/11 (FJLT transform term, bound): `(3/k)‖z‖⁴`.
//! * Lemma 8 (input-perturbed FJLT, bound with explicit constants).
//! * §7: the δ-crossover between Laplace and Gaussian noise and the
//!   `d`-window where the FJLT is faster.

use dp_transforms::JlParams;

/// Lemma 3, exact: total estimator variance from its four pieces.
#[must_use]
pub fn lemma3_variance(k: usize, dist_sq: f64, var_transform: f64, m2: f64, m4: f64) -> f64 {
    var_transform + 8.0 * m2 * dist_sq + 2.0 * k as f64 * m4 + 2.0 * k as f64 * m2 * m2
}

/// Exact transform term for the i.i.d. Gaussian projection:
/// `Var[‖Sz‖²] = (2/k)‖z‖⁴`.
#[must_use]
pub fn var_transform_iid(k: usize, dist_sq: f64) -> f64 {
    2.0 / k as f64 * dist_sq * dist_sq
}

/// Exact transform term for the SJLT (Lemma 10 proof):
/// `Var[‖Sz‖²] = (2/k)(‖z‖₂⁴ − ‖z‖₄⁴)`.
#[must_use]
pub fn var_transform_sjlt(k: usize, dist_sq: f64, l4_pow4: f64) -> f64 {
    (2.0 / k as f64) * (dist_sq * dist_sq - l4_pow4).max(0.0)
}

/// Transform-term bound for the FJLT (Lemma 7): `(3/k)‖z‖⁴`.
#[must_use]
pub fn var_transform_fjlt(k: usize, dist_sq: f64) -> f64 {
    3.0 / k as f64 * dist_sq * dist_sq
}

/// Theorem 2, exact: `Var[Ê_iid] = (2/k)‖z‖⁴ + 8σ²‖z‖² + 8σ⁴k`.
#[must_use]
pub fn var_iid_gaussian(k: usize, sigma: f64, dist_sq: f64) -> f64 {
    let s2 = sigma * sigma;
    var_transform_iid(k, dist_sq) + 8.0 * s2 * dist_sq + 8.0 * s2 * s2 * k as f64
}

/// Theorem 3 instantiated exactly: SJLT transform term plus Laplace noise
/// `b = √s/ε` (`E[η²] = 2s/ε²`, `E[η⁴] = 24s²/ε⁴`):
/// `Var = (2/k)(‖z‖⁴−‖z‖₄⁴) + (16s/ε²)‖z‖² + 56k·s²/ε⁴`.
#[must_use]
pub fn var_sjlt_laplace(k: usize, s: usize, epsilon: f64, dist_sq: f64, l4_pow4: f64) -> f64 {
    let b2 = s as f64 / (epsilon * epsilon); // b² = s/ε²
    let m2 = 2.0 * b2;
    let m4 = 24.0 * b2 * b2;
    lemma3_variance(k, dist_sq, var_transform_sjlt(k, dist_sq, l4_pow4), m2, m4)
}

/// SJLT with Gaussian noise at `σ = ∆₂·√(2 ln(1.25/δ))/ε`, `∆₂ = 1`:
/// exact via Lemma 3 with Gaussian moments.
#[must_use]
pub fn var_sjlt_gaussian(k: usize, epsilon: f64, delta: f64, dist_sq: f64, l4_pow4: f64) -> f64 {
    let sigma = gaussian_sigma(1.0, epsilon, delta);
    let s2 = sigma * sigma;
    lemma3_variance(
        k,
        dist_sq,
        var_transform_sjlt(k, dist_sq, l4_pow4),
        s2,
        3.0 * s2 * s2,
    )
}

/// The classic Gaussian-mechanism calibration `σ = ∆₂√(2 ln(1.25/δ))/ε`.
#[must_use]
pub fn gaussian_sigma(l2_sensitivity: f64, epsilon: f64, delta: f64) -> f64 {
    l2_sensitivity * (2.0 * (1.25 / delta).ln()).sqrt() / epsilon
}

/// Lemma 8 bound with explicit constants for the input-perturbed FJLT.
///
/// With `η, µ ~ N(0, σ²)^d` the effective input noise is
/// `w = η − µ ~ N(0, s₂)^d`, `s₂ = 2σ²`. Conditioning on `w`
/// (`v = z + w`) and using Lemma 7/11 (`Var_Φ[‖Φ′v‖²] ≤ (3/k)‖v‖⁴` for
/// `q` above the Lemma 11 floor):
///
/// ```text
/// Var[Ê] = E_w[Var_Φ] + Var_w(‖v‖²)
///        ≤ (3/k)·E‖v‖⁴ + 4‖z‖²s₂ + 2d·s₂²
///        = (3/k)[(‖z‖² + d·s₂)² + 4‖z‖²s₂ + 2d·s₂²] + 4‖z‖²s₂ + 2d·s₂²
/// ```
///
/// matching the paper's `3/k·‖z‖⁴ + O(d²σ⁴/k + dσ²‖z‖²)` shape; the
/// `2d·s₂²` term outside the `3/k` factor is absorbed by `d²σ⁴/k` in the
/// paper's regime `k < d` but must be kept explicitly for `k ≥ d`.
///
/// `d` is the *logical* input dimension (the number of noisy
/// coordinates). The Lemma 11 hypothesis on `q` applies to the dimension
/// the Hadamard transform operates on — [`Fjlt`](dp_transforms::fjlt)
/// zero-pads to the next power of two, so the floor is checked against
/// that padded dimension.
#[must_use]
pub fn var_fjlt_input_bound(k: usize, d: usize, q: f64, sigma: f64, dist_sq: f64) -> f64 {
    let d_pad = dp_linalg::next_pow2(d);
    debug_assert!(
        q + 1e-12 >= 9.0 / (d_pad as f64 + 9.0),
        "Lemma 11 requires q >= 1/(d_pad/9+1)"
    );
    let kf = k as f64;
    let df = d as f64;
    let s2 = 2.0 * sigma * sigma; // variance of η − µ per coordinate
    let mean_sq = dist_sq + df * s2; // E‖v‖²
    let var_v = 4.0 * dist_sq * s2 + 2.0 * df * s2 * s2; // Var(‖v‖²)
    3.0 / kf * (mean_sq * mean_sq + var_v) + var_v
}

/// §7: the δ below which the SJLT-Laplace variance beats the
/// SJLT-Gaussian variance, found by bisection on the exact forms.
/// The paper predicts the threshold has the shape `e^{−Θ(s)}`.
///
/// # Panics
/// If the inputs are degenerate (no crossover in `(1e−300, 0.5)`).
#[must_use]
pub fn delta_crossover(k: usize, s: usize, epsilon: f64, dist_sq: f64, l4_pow4: f64) -> f64 {
    let lap = var_sjlt_laplace(k, s, epsilon, dist_sq, l4_pow4);
    let gauss = |delta: f64| var_sjlt_gaussian(k, epsilon, delta, dist_sq, l4_pow4);
    // Gaussian variance increases as δ shrinks; Laplace is δ-free.
    let (mut lo, mut hi) = (1e-300f64, 0.5f64);
    assert!(
        gauss(lo) > lap && gauss(hi) < lap,
        "no crossover: var_lap = {lap}, var_gauss(0.5) = {}, var_gauss(1e-300) = {}",
        gauss(hi),
        gauss(lo)
    );
    for _ in 0..200 {
        let mid = (lo.ln() + hi.ln()).mul_add(0.5, 0.0).exp();
        if gauss(mid) > lap {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo.ln() + hi.ln()).mul_add(0.5, 0.0).exp()
}

/// §7 Eq. (5): the window of input dimensions where the FJLT sketches
/// faster than the SJLT: `ln²(1/β)/α < d < e^s` (explicit-constant form
/// of `(log²(1/β)/α, β^{−O(1/α)})`).
#[must_use]
pub fn fjlt_faster_window(params: &JlParams) -> (f64, f64) {
    let lb = params.log_inv_beta();
    let lower = lb * lb / params.alpha();
    let upper = (params.s() as f64).exp();
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem2_matches_lemma3_assembly() {
        // Assembling Theorem 2 from Lemma 3 with Gaussian moments must
        // give the identical polynomial.
        let (k, sigma, dist_sq) = (64usize, 1.7f64, 9.0f64);
        let s2 = sigma * sigma;
        let via_lemma3 =
            lemma3_variance(k, dist_sq, var_transform_iid(k, dist_sq), s2, 3.0 * s2 * s2);
        let direct = var_iid_gaussian(k, sigma, dist_sq);
        assert!((via_lemma3 - direct).abs() < 1e-9 * direct);
    }

    #[test]
    fn sjlt_laplace_polynomial() {
        // Hand-check the constants: k=10, s=4, ε=2, ‖z‖²=1, ‖z‖₄⁴=0.
        // b² = 1, m2 = 2, m4 = 24.
        // Var = 2/10·1 + 8·2·1 + 2·10·24 + 2·10·4 = 0.2 + 16 + 480 + 80.
        let v = var_sjlt_laplace(10, 4, 2.0, 1.0, 0.0);
        assert!((v - 576.2).abs() < 1e-9, "v = {v}");
    }

    #[test]
    fn sjlt_transform_term_never_negative() {
        // ‖z‖₄⁴ ≤ ‖z‖₂⁴ always, but guard the clamp.
        assert_eq!(var_transform_sjlt(8, 1.0, 2.0), 0.0);
        assert!(var_transform_sjlt(8, 2.0, 1.0) > 0.0);
    }

    #[test]
    fn gaussian_noise_grows_as_delta_shrinks() {
        let v1 = var_sjlt_gaussian(64, 1.0, 1e-3, 4.0, 0.0);
        let v2 = var_sjlt_gaussian(64, 1.0, 1e-12, 4.0, 0.0);
        assert!(v2 > v1);
    }

    #[test]
    fn crossover_has_exp_minus_s_shape() {
        // As s grows, ln(1/δ*) should grow about linearly in s (§7:
        // δ* = e^{−Θ(s)}). Check monotonicity and rough linearity.
        let (eps, dist_sq) = (1.0, 1.0);
        let mut prev_ln = 0.0f64;
        let mut ratios = Vec::new();
        for s in [4usize, 8, 16, 32] {
            let k = 16 * s;
            let d = delta_crossover(k, s, eps, dist_sq, 0.0);
            let ln_inv = -(d.ln());
            assert!(ln_inv > prev_ln, "monotone in s");
            ratios.push(ln_inv / s as f64);
            prev_ln = ln_inv;
        }
        // Θ(s): the ratio ln(1/δ*)/s stays within a small constant band.
        let (mn, mx) = ratios
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(a, b), &r| (a.min(r), b.max(r)));
        assert!(mx / mn < 4.0, "ratios {ratios:?}");
    }

    #[test]
    fn crossover_balances_variances() {
        let (k, s, eps, dist_sq) = (128usize, 8usize, 1.0, 2.0);
        let dstar = delta_crossover(k, s, eps, dist_sq, 0.0);
        let lap = var_sjlt_laplace(k, s, eps, dist_sq, 0.0);
        let gau = var_sjlt_gaussian(k, eps, dstar, dist_sq, 0.0);
        assert!((lap - gau).abs() / lap < 1e-6, "lap {lap} vs gau {gau}");
        // Below the crossover Laplace wins, above Gaussian wins.
        assert!(var_sjlt_gaussian(k, eps, dstar * 1e-3, dist_sq, 0.0) > lap);
        assert!(var_sjlt_gaussian(k, eps, (dstar * 1e3).min(0.4), dist_sq, 0.0) < lap);
    }

    #[test]
    fn fjlt_input_bound_dominates_output_style() {
        // The d-dependence makes the input-perturbed FJLT worse than the
        // iid baseline at equal σ (the paper's §7 conclusion).
        let (k, d, q, sigma, dist_sq) = (256usize, 4096usize, 0.1, 1.0, 4.0);
        let fjlt = var_fjlt_input_bound(k, d, q, sigma, dist_sq);
        let iid = var_iid_gaussian(k, sigma, dist_sq);
        assert!(fjlt > iid, "fjlt {fjlt} vs iid {iid}");
    }

    #[test]
    fn fjlt_window_orders() {
        let p = JlParams::new(0.2, 0.05).unwrap();
        let (lo, hi) = fjlt_faster_window(&p);
        assert!(lo > 0.0 && hi > lo, "window ({lo}, {hi})");
    }
}
