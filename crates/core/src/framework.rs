//! The general Lemma 3/4 construction: any LPP transform × any zero-mean
//! noise mechanism.
//!
//! `GenSketcher` is the paper's "more general, technical result" made
//! concrete: it wires an arbitrary [`LinearTransform`] (which must satisfy
//! LPP — all transforms in `dp-transforms` do) to an arbitrary
//! [`NoiseMechanism`], producing released sketches whose pairwise
//! estimator is unbiased with the Lemma 3 variance. The named
//! constructions of the paper ([`crate::sjlt_private::PrivateSjlt`],
//! [`crate::fjlt_private`], [`crate::kenthapadi::Kenthapadi`]) are thin
//! wrappers over this type with their calibration rules applied.

use crate::error::CoreError;
use crate::estimator::{DistanceEstimate, NoisySketch};
use crate::variance::lemma3_variance;
use dp_hashing::Seed;
use dp_linalg::SparseVector;
use dp_noise::mechanism::NoiseMechanism;
use dp_noise::PrivacyGuarantee;
use dp_transforms::{LinearTransform, TransformError};
use std::sync::Arc;

/// A private sketcher pairing a public LPP transform with a calibrated
/// noise mechanism.
#[derive(Debug, Clone)]
pub struct GenSketcher<T, M> {
    transform: T,
    mechanism: M,
    tag: Arc<str>,
}

impl<T: LinearTransform, M: NoiseMechanism> GenSketcher<T, M> {
    /// Pair a transform with a mechanism. The `tag` should identify the
    /// public transform instance (name + seed) so incompatible sketches
    /// are rejected at estimation time. It is interned once and shared by
    /// every released sketch.
    #[must_use]
    pub fn new(transform: T, mechanism: M, tag: impl Into<Arc<str>>) -> Self {
        Self {
            transform,
            mechanism,
            tag: tag.into(),
        }
    }

    /// The public transform.
    #[must_use]
    pub fn transform(&self) -> &T {
        &self.transform
    }

    /// The calibrated noise mechanism.
    #[must_use]
    pub fn mechanism(&self) -> &M {
        &self.mechanism
    }

    /// The transform identity tag.
    #[must_use]
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// Sketch dimension `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.transform.output_dim()
    }

    /// The privacy guarantee of each released sketch (post-processing
    /// makes every estimate computed from sketches inherit it).
    #[must_use]
    pub fn guarantee(&self) -> PrivacyGuarantee {
        self.mechanism.guarantee()
    }

    /// Release a noisy sketch of `x`. The `noise_seed` must be private to
    /// the releasing party and fresh per release.
    ///
    /// # Errors
    /// [`CoreError::Transform`] on dimension mismatch.
    pub fn sketch(&self, x: &[f64], noise_seed: Seed) -> Result<NoisySketch, CoreError> {
        let mut values = self.transform.apply(x)?;
        self.add_noise(&mut values, noise_seed);
        Ok(self.package(values))
    }

    /// Release a noisy sketch of a sparse vector (uses the transform's
    /// sparse fast path when it has one).
    ///
    /// # Errors
    /// [`CoreError::Transform`] on dimension mismatch.
    pub fn sketch_sparse(
        &self,
        x: &SparseVector,
        noise_seed: Seed,
    ) -> Result<NoisySketch, CoreError> {
        let mut values = self.transform.apply_sparse(x)?;
        self.add_noise(&mut values, noise_seed);
        Ok(self.package(values))
    }

    /// Debiased squared-distance estimate between two released sketches.
    ///
    /// # Errors
    /// [`CoreError::IncompatibleSketches`] if the sketches don't combine.
    pub fn estimate_sq_distance(&self, a: &NoisySketch, b: &NoisySketch) -> Result<f64, CoreError> {
        a.estimate_sq_distance(b)
    }

    /// Lemma 3 variance prediction, given the true squared distance and a
    /// transform-term value (callers pick the exact/bound form for their
    /// transform from [`crate::variance`]).
    #[must_use]
    pub fn predicted_variance(&self, dist_sq: f64, var_transform_term: f64) -> DistanceEstimate {
        let v = lemma3_variance(
            self.k(),
            dist_sq,
            var_transform_term,
            self.mechanism.second_moment(),
            self.mechanism.fourth_moment(),
        );
        DistanceEstimate {
            estimate: dist_sq,
            predicted_variance: v,
        }
    }

    /// The debias constant `2k·E[η²]` of the pairwise estimator.
    #[must_use]
    pub fn debias_constant(&self) -> f64 {
        2.0 * self.k() as f64 * self.mechanism.second_moment()
    }

    /// Add calibrated noise to an externally maintained noiseless
    /// projection (e.g. a streaming accumulator built over the same
    /// public transform) and package it as a release.
    ///
    /// # Errors
    /// [`CoreError::Transform`] if `values` is not `k`-dimensional.
    pub fn finalize(
        &self,
        mut values: Vec<f64>,
        noise_seed: Seed,
    ) -> Result<NoisySketch, CoreError> {
        if values.len() != self.k() {
            return Err(TransformError::DimensionMismatch {
                expected: self.k(),
                actual: values.len(),
            }
            .into());
        }
        self.add_noise(&mut values, noise_seed);
        Ok(self.package(values))
    }

    fn add_noise(&self, values: &mut [f64], noise_seed: Seed) {
        let mut rng = noise_seed.child("noise").rng();
        for v in values.iter_mut() {
            *v += self.mechanism.sample(&mut rng);
        }
    }

    fn package(&self, values: Vec<f64>) -> NoisySketch {
        NoisySketch::new(
            values,
            Arc::clone(&self.tag),
            self.mechanism.second_moment(),
            self.mechanism.fourth_moment(),
        )
    }
}

/// Lemma 4's noise margin `m = min(∆₁, ∆₂·√(ln(1/δ)))` — the quantity the
/// total noise contribution scales with.
#[must_use]
pub fn noise_margin(l1_sensitivity: f64, l2_sensitivity: f64, delta: Option<f64>) -> f64 {
    match delta {
        None => l1_sensitivity,
        Some(d) => l1_sensitivity.min(l2_sensitivity * (1.0 / d).ln().sqrt()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_noise::mechanism::{LaplaceMechanism, ZeroNoise};
    use dp_stats::Summary;
    use dp_transforms::sjlt::Sjlt;

    fn sketcher_zero() -> GenSketcher<Sjlt, ZeroNoise> {
        let t = Sjlt::new(32, 16, 4, 6, Seed::new(1)).unwrap();
        GenSketcher::new(t, ZeroNoise, "sjlt#1")
    }

    #[test]
    fn zero_noise_reduces_to_plain_projection() {
        let s = sketcher_zero();
        let x = vec![1.0; 32];
        let sk = s.sketch(&x, Seed::new(99)).unwrap();
        let direct = s.transform().apply(&x).unwrap();
        assert_eq!(sk.values(), direct.as_slice());
        assert_eq!(s.debias_constant(), 0.0);
    }

    #[test]
    fn sparse_and_dense_sketches_agree_without_noise() {
        let s = sketcher_zero();
        let mut x = vec![0.0; 32];
        x[7] = 2.0;
        let sv = SparseVector::from_dense(&x);
        let a = s.sketch(&x, Seed::new(5)).unwrap();
        let b = s.sketch_sparse(&sv, Seed::new(5)).unwrap();
        for (u, v) in a.values().iter().zip(b.values()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn noise_seeds_are_respected() {
        let t = Sjlt::new(16, 8, 2, 4, Seed::new(2)).unwrap();
        let m = LaplaceMechanism::new(2.0f64.sqrt(), 1.0).unwrap();
        let s = GenSketcher::new(t, m, "sjlt#2");
        let x = vec![1.0; 16];
        let a = s.sketch(&x, Seed::new(10)).unwrap();
        let b = s.sketch(&x, Seed::new(10)).unwrap();
        let c = s.sketch(&x, Seed::new(11)).unwrap();
        assert_eq!(a, b, "same noise seed → identical release");
        assert_ne!(a, c, "fresh noise seed → fresh noise");
    }

    #[test]
    fn estimator_unbiased_with_laplace_noise() {
        // Monte-Carlo over transform AND noise draws: the mean of Ê must
        // approach ‖x − y‖².
        let d = 24;
        let x: Vec<f64> = (0..d).map(|i| (i % 3) as f64).collect();
        let y: Vec<f64> = (0..d).map(|i| ((i + 1) % 3) as f64).collect();
        let true_d = dp_linalg::vector::sq_distance(&x, &y);
        let mut stats = Summary::new();
        for rep in 0..1500u64 {
            let t = Sjlt::new(d, 16, 4, 6, Seed::new(rep)).unwrap();
            let m = LaplaceMechanism::new(2.0, 2.0).unwrap();
            let s = GenSketcher::new(t, m, format!("sjlt#{rep}"));
            let a = s.sketch(&x, Seed::new(10_000 + rep)).unwrap();
            let b = s.sketch(&y, Seed::new(20_000 + rep)).unwrap();
            stats.push(s.estimate_sq_distance(&a, &b).unwrap());
        }
        let z = (stats.mean() - true_d).abs() / stats.stderr();
        assert!(
            z < 4.0,
            "bias z-score {z} (mean {} vs {true_d})",
            stats.mean()
        );
    }

    #[test]
    fn lemma3_variance_matches_empirical() {
        // Variance of Ê ≈ Lemma 3 prediction with the exact SJLT term.
        let d = 24;
        let x: Vec<f64> = (0..d).map(|i| 0.5 + (i % 2) as f64).collect();
        let y = vec![0.0; d];
        let z: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a - b).collect();
        let dist_sq = dp_linalg::vector::sq_norm(&z);
        let l4 = dp_linalg::vector::l4_norm(&z);
        let (k, s_par, eps) = (32usize, 4usize, 1.5f64);
        let mut stats = Summary::new();
        for rep in 0..4000u64 {
            let t = Sjlt::new(d, k, s_par, 8, Seed::new(rep)).unwrap();
            let m = LaplaceMechanism::new((s_par as f64).sqrt(), eps).unwrap();
            let s = GenSketcher::new(t, m, "tag");
            let a = s.sketch(&x, Seed::new(50_000 + rep)).unwrap();
            let b = s.sketch(&y, Seed::new(90_000 + rep)).unwrap();
            stats.push(s.estimate_sq_distance(&a, &b).unwrap());
        }
        let predicted = crate::variance::var_sjlt_laplace(k, s_par, eps, dist_sq, l4);
        let rel = (stats.variance() - predicted).abs() / predicted;
        // Fourth-moment Monte-Carlo noise is heavy; 15% tolerance.
        assert!(
            rel < 0.15,
            "var {} vs {predicted} (rel {rel})",
            stats.variance()
        );
    }

    #[test]
    fn guarantee_passthrough() {
        let t = Sjlt::new(8, 4, 2, 4, Seed::new(3)).unwrap();
        let m = LaplaceMechanism::new(2.0f64.sqrt(), 0.25).unwrap();
        let s = GenSketcher::new(t, m, "t");
        assert!(s.guarantee().is_pure());
        assert!((s.guarantee().epsilon() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn margin_rule() {
        assert_eq!(noise_margin(3.0, 1.0, None), 3.0);
        // δ small → Laplace side smaller.
        let m = noise_margin(2.0, 1.0, Some(1e-9));
        assert!((m - 2.0).abs() < 1e-12);
        // δ large → Gaussian side smaller.
        let m = noise_margin(2.0, 1.0, Some(0.3));
        assert!(m < 2.0);
    }
}
