//! Unified error type for the core sketch layer.

use dp_noise::NoiseError;
use dp_transforms::TransformError;
use std::fmt;

/// Errors raised when building or using private sketches.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying transform error.
    Transform(TransformError),
    /// Underlying noise/privacy parameter error.
    Noise(NoiseError),
    /// A required configuration field is missing.
    MissingField(&'static str),
    /// Two sketches are not comparable (different transform, k, or noise).
    IncompatibleSketches(String),
    /// A calibration precondition of the paper is violated
    /// (e.g. Theorem 1 requires `ε < ln(1/δ)`).
    CalibrationPrecondition(String),
    /// A wire payload (JSON or binary) could not be encoded or decoded.
    Wire(String),
    /// A binary wire frame's checksum trailer did not match its payload
    /// (corruption in transit or at rest).
    ChecksumMismatch {
        /// The checksum stored in the frame trailer.
        stored: u64,
        /// The checksum recomputed over the received payload.
        computed: u64,
    },
    /// The operation is not defined for this construction (e.g. releasing
    /// a maintained projection under input-perturbation noise).
    Unsupported(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Transform(e) => write!(f, "transform error: {e}"),
            Self::Noise(e) => write!(f, "noise error: {e}"),
            Self::MissingField(name) => write!(f, "missing configuration field: {name}"),
            Self::IncompatibleSketches(why) => write!(f, "incompatible sketches: {why}"),
            Self::CalibrationPrecondition(why) => {
                write!(f, "calibration precondition violated: {why}")
            }
            Self::Wire(why) => write!(f, "wire format error: {why}"),
            Self::ChecksumMismatch { stored, computed } => write!(
                f,
                "wire checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            Self::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Transform(e) => Some(e),
            Self::Noise(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransformError> for CoreError {
    fn from(e: TransformError) -> Self {
        Self::Transform(e)
    }
}

impl From<NoiseError> for CoreError {
    fn from(e: NoiseError) -> Self {
        Self::Noise(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let t: CoreError = TransformError::InvalidDimensions { d: 0, k: 1 }.into();
        assert!(t.to_string().contains("transform"));
        let n: CoreError = NoiseError::InvalidEpsilon(0.0).into();
        assert!(n.to_string().contains("noise"));
        assert!(CoreError::MissingField("epsilon")
            .to_string()
            .contains("epsilon"));
        assert!(std::error::Error::source(&t).is_some());
        assert!(std::error::Error::source(&CoreError::MissingField("x")).is_none());
    }
}
