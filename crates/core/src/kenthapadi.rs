//! The Kenthapadi et al. (2013) baseline: i.i.d. Gaussian JL transform
//! with Gaussian output noise (paper Theorems 1–2).
//!
//! Three σ calibrations are exposed, matching the paper's discussion:
//!
//! * [`SigmaCalibration::ExactSensitivity`] — the Note 1 / §2.1.1 fix:
//!   scan the realized `∆₂(P)` (`O(dk)` initialization) and set
//!   `σ = ∆₂·√(2 ln(1.25/δ))/ε` (Lemma 2). This is the sound default.
//! * [`SigmaCalibration::Theorem1`] — the original
//!   `σ = (4/ε)·√(ln(1/δ))`, valid only when `ε < ln(1/δ)` and when the
//!   high-probability bound `∆₂ ≤ 2` holds — the δ "hides" the failure
//!   probability of that bound, the weakness §2.1.1 criticizes.
//! * [`SigmaCalibration::AssumedUnit`] — calibrate as if `∆₂ = 1`
//!   (its expectation). **Not DP in general**: kept (clearly marked) so
//!   experiment E10 can quantify how often the assumption fails.

use crate::config::SketchConfig;
use crate::error::CoreError;
use crate::estimator::{DistanceEstimate, NoisySketch};
use crate::framework::GenSketcher;
use crate::variance::var_iid_gaussian;
use dp_hashing::Seed;
use dp_noise::mechanism::GaussianMechanism;
use dp_noise::PrivacyGuarantee;
use dp_transforms::gaussian_iid::GaussianIid;
use dp_transforms::LinearTransform;

/// How to pick σ for the baseline's Gaussian noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigmaCalibration {
    /// Scan `∆₂(P)` exactly and apply Lemma 2 (sound; `O(dk)` init).
    ExactSensitivity,
    /// Kenthapadi Theorem 1: `σ = (4/ε)√(ln 1/δ)`, requires `ε < ln(1/δ)`.
    Theorem1,
    /// Assume `∆₂ = 1` (expectation). Unsound if the realized `∆₂ > 1`;
    /// for experimentation only.
    AssumedUnit,
}

/// The Theorems 1–2 baseline sketcher.
#[derive(Debug, Clone)]
pub struct Kenthapadi {
    inner: GenSketcher<GaussianIid, GaussianMechanism>,
    calibration: SigmaCalibration,
    sound: bool,
}

impl Kenthapadi {
    /// Build the baseline with the chosen σ calibration.
    ///
    /// # Errors
    /// * [`CoreError::MissingField`] without a δ budget;
    /// * [`CoreError::CalibrationPrecondition`] if Theorem 1's
    ///   `ε < ln(1/δ)` fails;
    /// * transform/noise construction failures.
    pub fn new(
        config: &SketchConfig,
        calibration: SigmaCalibration,
        transform_seed: Seed,
    ) -> Result<Self, CoreError> {
        let delta = config.delta().ok_or(CoreError::MissingField("delta"))?;
        let eps = config.epsilon();
        // O(dk) construction incl. the exact sensitivity scan (Note 1).
        let transform = GaussianIid::new(config.input_dim(), config.k(), transform_seed)?;
        let (mech, sound) = match calibration {
            SigmaCalibration::ExactSensitivity => (
                GaussianMechanism::new(transform.l2_sensitivity(), eps, delta)?,
                true,
            ),
            SigmaCalibration::Theorem1 => {
                if eps >= (1.0 / delta).ln() {
                    return Err(CoreError::CalibrationPrecondition(format!(
                        "Theorem 1 needs eps < ln(1/delta): eps = {eps}, ln(1/delta) = {}",
                        (1.0 / delta).ln()
                    )));
                }
                let sigma = 4.0 / eps * (1.0 / delta).ln().sqrt();
                // Sound iff the realized ∆₂ is within the ≤2 bound σ was
                // built for (σ ≥ ∆₂ε⁻¹√(2 ln 1.25/δ) with ∆₂ ≤ 2).
                let needed =
                    transform.l2_sensitivity() / eps * (2.0 * (1.25f64 / delta).ln()).sqrt();
                (
                    GaussianMechanism::with_sigma(sigma, eps, delta)?,
                    sigma >= needed,
                )
            }
            SigmaCalibration::AssumedUnit => {
                let sigma = (2.0 * (1.25f64 / delta).ln()).sqrt() / eps;
                let needed =
                    transform.l2_sensitivity() / eps * (2.0 * (1.25f64 / delta).ln()).sqrt();
                (
                    GaussianMechanism::with_sigma(sigma, eps, delta)?,
                    sigma >= needed,
                )
            }
        };
        let tag = format!(
            "kenthapadi(k={},seed={},cal={calibration:?})",
            transform.output_dim(),
            transform_seed.value()
        );
        Ok(Self {
            inner: GenSketcher::new(transform, mech, tag),
            calibration,
            sound,
        })
    }

    /// Sketch dimension `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.inner.k()
    }

    /// The underlying general sketcher.
    #[must_use]
    pub fn general(&self) -> &GenSketcher<GaussianIid, GaussianMechanism> {
        &self.inner
    }

    /// The calibrated σ.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.inner.mechanism().sigma()
    }

    /// Which calibration was used.
    #[must_use]
    pub fn calibration(&self) -> SigmaCalibration {
        self.calibration
    }

    /// Whether the *realized* transform's sensitivity is actually covered
    /// by the calibrated σ (always true for `ExactSensitivity`; may be
    /// false for the other modes — the §2.1.1 criticism made measurable).
    #[must_use]
    pub fn calibration_is_sound(&self) -> bool {
        self.sound
    }

    /// DP guarantee of releases (conditional on
    /// [`Self::calibration_is_sound`] for the non-exact modes).
    #[must_use]
    pub fn guarantee(&self) -> PrivacyGuarantee {
        self.inner.guarantee()
    }

    /// The scanned exact ℓ₂-sensitivity of the realized transform.
    #[must_use]
    pub fn realized_l2_sensitivity(&self) -> f64 {
        self.inner.transform().l2_sensitivity()
    }

    /// Release a sketch.
    ///
    /// # Errors
    /// [`CoreError::Transform`] on dimension mismatch.
    pub fn sketch(&self, x: &[f64], noise_seed: Seed) -> Result<NoisySketch, CoreError> {
        self.inner.sketch(x, noise_seed)
    }

    /// Debiased squared-distance estimate.
    ///
    /// # Errors
    /// [`CoreError::IncompatibleSketches`] on mismatched sketches.
    pub fn estimate_sq_distance(&self, a: &NoisySketch, b: &NoisySketch) -> Result<f64, CoreError> {
        self.inner.estimate_sq_distance(a, b)
    }

    /// Theorem 2's exact variance at a hypothetical true distance:
    /// `(2/k)‖z‖⁴ + 8σ²‖z‖² + 8σ⁴k`.
    #[must_use]
    pub fn variance(&self, dist_sq: f64) -> DistanceEstimate {
        DistanceEstimate {
            estimate: dist_sq,
            predicted_variance: var_iid_gaussian(self.k(), self.sigma(), dist_sq),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_stats::Summary;

    fn config() -> SketchConfig {
        SketchConfig::builder()
            .input_dim(48)
            .alpha(0.3)
            .beta(0.1)
            .epsilon(1.0)
            .delta(1e-6)
            .build()
            .unwrap()
    }

    #[test]
    fn requires_delta() {
        let cfg = SketchConfig::builder()
            .input_dim(8)
            .epsilon(1.0)
            .build()
            .unwrap();
        assert!(matches!(
            Kenthapadi::new(&cfg, SigmaCalibration::ExactSensitivity, Seed::new(1)),
            Err(CoreError::MissingField("delta"))
        ));
    }

    #[test]
    fn theorem1_precondition_enforced() {
        let cfg = SketchConfig::builder()
            .input_dim(8)
            .epsilon(20.0) // ≥ ln(1/δ) = ln(1e6) ≈ 13.8
            .delta(1e-6)
            .build()
            .unwrap();
        assert!(matches!(
            Kenthapadi::new(&cfg, SigmaCalibration::Theorem1, Seed::new(1)),
            Err(CoreError::CalibrationPrecondition(_))
        ));
    }

    #[test]
    fn exact_calibration_always_sound() {
        let b =
            Kenthapadi::new(&config(), SigmaCalibration::ExactSensitivity, Seed::new(7)).unwrap();
        assert!(b.calibration_is_sound());
        // σ = ∆₂√(2 ln 1.25/δ)/ε exactly:
        let want = b.realized_l2_sensitivity() * (2.0 * (1.25f64 / 1e-6).ln()).sqrt();
        assert!((b.sigma() - want).abs() < 1e-12);
    }

    #[test]
    fn theorem1_sigma_larger_than_exact() {
        // With ∆₂ ≈ 1, the 4/ε√ln(1/δ) calibration is more conservative
        // than the exact-sensitivity one.
        let cfg = config();
        let t1 = Kenthapadi::new(&cfg, SigmaCalibration::Theorem1, Seed::new(7)).unwrap();
        let ex = Kenthapadi::new(&cfg, SigmaCalibration::ExactSensitivity, Seed::new(7)).unwrap();
        assert!(t1.sigma() > ex.sigma());
        assert!(t1.calibration_is_sound(), "∆₂ well under 2 here");
    }

    #[test]
    fn estimator_unbiased_and_theorem2_variance() {
        let cfg = config();
        let d = cfg.input_dim();
        let x = vec![1.0; d];
        let y = vec![0.0; d];
        let true_d = d as f64;
        let mut stats = Summary::new();
        for rep in 0..1200u64 {
            let b =
                Kenthapadi::new(&cfg, SigmaCalibration::ExactSensitivity, Seed::new(rep)).unwrap();
            let a = b.sketch(&x, Seed::new(3000 + rep)).unwrap();
            let c = b.sketch(&y, Seed::new(7000 + rep)).unwrap();
            stats.push(b.estimate_sq_distance(&a, &c).unwrap());
        }
        let z = (stats.mean() - true_d).abs() / stats.stderr();
        assert!(z < 4.0, "bias z {z}");
        // Theorem 2 variance with the (per-seed varying) σ: use one
        // representative instance for the prediction; tolerance covers
        // the σ spread across seeds.
        let b0 = Kenthapadi::new(&cfg, SigmaCalibration::ExactSensitivity, Seed::new(0)).unwrap();
        let pred = b0.variance(true_d).predicted_variance;
        let rel = (stats.variance() - pred).abs() / pred;
        assert!(rel < 0.35, "var {} vs {pred}", stats.variance());
    }

    #[test]
    fn assumed_unit_soundness_is_data_dependent() {
        // With a healthy k the realized ∆₂ > 1 about half the time is
        // false... just assert the flag is consistent with the scan.
        let b = Kenthapadi::new(&config(), SigmaCalibration::AssumedUnit, Seed::new(3)).unwrap();
        let needed = b.realized_l2_sensitivity() * (2.0 * (1.25f64 / 1e-6).ln()).sqrt();
        assert_eq!(b.calibration_is_sound(), b.sigma() >= needed);
    }
}
