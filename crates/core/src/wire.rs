//! Versioned compact binary wire codec for released sketches.
//!
//! JSON (see [`crate::estimator::NoisySketch::to_json`]) is kept as the
//! human-readable compatibility path; this codec is the preferred wire
//! format for the distributed protocol and any sketch service. Layout
//! (all integers and floats little-endian):
//!
//! ```text
//! magic    4 bytes  b"DPNS"
//! version  1 byte   2 (f64 values) or 3 (f32 values)
//! tag_len  2 bytes  u16, length of the transform tag in bytes
//! tag      tag_len  UTF-8 transform identity tag
//! m2       8 bytes  f64, per-coordinate E[η²]
//! m4       8 bytes  f64, per-coordinate E[η⁴]
//! k        4 bytes  u32, number of sketch coordinates
//! values   8k (v2) or 4k (v3) bytes, the noisy projection
//! checksum 8 bytes  u64, FNV-1a-64 over every preceding byte
//! ```
//!
//! Version 2 appended the checksum trailer: [`fnv1a64`] over everything
//! from the magic through the last value, verified at decode time
//! ([`CoreError::ChecksumMismatch`]). FNV catches corruption — bit rot,
//! truncating proxies, misframed streams — not adversaries; frame
//! authenticity, if needed, belongs to the transport layer. Version 1
//! frames (no trailer) are rejected as unsupported.
//!
//! Version 3 ([`WIRE_VERSION_F32`]) is the *quantized* variant: the
//! values travel as `f32` (half the bytes per sketch) while the noise
//! moments stay `f64`. Decoding widens each value back to `f64`
//! losslessly, so a v3 frame round-trips byte-identically; what is lost
//! is the low mantissa of the original release, a per-coordinate
//! rounding error of at most half an f32 ulp — an additive variance the
//! §7-style experiment in `bench_pairwise` measures against the
//! predicted `ulp²/12` model. Every decoder accepts both versions;
//! *sending* v3 is gated on the receiver advertising
//! [`crate::protocol::CAP_SKETCH_F32`].
//!
//! Decoding can intern the tag through a [`TagInterner`], so a service
//! holding millions of sketches from a handful of sketchers stores each
//! distinct tag once (`Arc<str>`), not one `String` per sketch.
//!
//! Codec version 3 ([`crate::protocol`]) added the request/response
//! *conversation* layer on top of these payload frames; sketch (`DPNS`)
//! and release (`DPRL`, [`crate::release`]) payloads themselves remain
//! at version 2 and travel embedded inside v3 frames.

use crate::error::CoreError;
use crate::estimator::NoisySketch;
use std::collections::HashSet;
use std::sync::Arc;

/// Magic prefix of a serialized [`NoisySketch`].
pub const SKETCH_MAGIC: [u8; 4] = *b"DPNS";

/// Current codec version (2: checksum trailer).
pub const WIRE_VERSION: u8 = 2;

/// The quantized codec version (3: `f32` values, `f64` moments).
pub const WIRE_VERSION_F32: u8 = 3;

/// Size in bytes of the checksum trailer.
pub const CHECKSUM_LEN: usize = 8;

/// FNV-1a 64-bit hash — the frame checksum. A single corrupted byte in
/// the covered region always changes the digest (each step xors the
/// byte into the state and multiplies by an odd — hence invertible mod
/// 2⁶⁴ — prime).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_update(FNV1A64_INIT, bytes)
}

/// The FNV-1a-64 offset basis — the initial state for an incremental
/// digest built with [`fnv1a64_update`].
pub const FNV1A64_INIT: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold more bytes into a running FNV-1a-64 state. Feeding a byte
/// string in any number of chunks yields the same digest as one
/// [`fnv1a64`] call over the concatenation — the property the streamed
/// tile-result summary frame relies on.
#[must_use]
pub fn fnv1a64_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deduplicates transform tags while decoding streams of sketches.
///
/// Cloning an interner clones the `HashSet` of `Arc<str>` handles —
/// the clone shares every tag allocation with the original, which is
/// what snapshot publication wants: a cloned store keeps pointing at
/// the same interned tags.
#[derive(Debug, Default, Clone)]
pub struct TagInterner {
    tags: HashSet<Arc<str>>,
}

impl TagInterner {
    /// Empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the shared handle for `tag`, allocating it at most once.
    pub fn intern(&mut self, tag: &str) -> Arc<str> {
        if let Some(existing) = self.tags.get(tag) {
            Arc::clone(existing)
        } else {
            let owned: Arc<str> = Arc::from(tag);
            self.tags.insert(Arc::clone(&owned));
            owned
        }
    }

    /// Number of distinct tags seen.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether no tag has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }
}

/// Exact serialized size of a sketch with the given tag and dimension.
#[must_use]
pub fn encoded_len(tag_len: usize, k: usize) -> usize {
    4 + 1 + 2 + tag_len + 8 + 8 + 4 + 8 * k + CHECKSUM_LEN
}

/// Exact serialized size of a *quantized* (v3, `f32` values) sketch
/// with the given tag and dimension.
#[must_use]
pub fn encoded_len_f32(tag_len: usize, k: usize) -> usize {
    4 + 1 + 2 + tag_len + 8 + 8 + 4 + 4 * k + CHECKSUM_LEN
}

// dp-lint: freeze(sketch-wire-codec) begin
//
// The byte layout both sketch encoders emit IS the replication
// contract: journaled ingest frames, disk journals, and store
// snapshots all embed these bytes verbatim, so any layout change
// silently corrupts every persisted journal. Bump the wire version and
// add a new encoder instead of editing these.

/// Encode a sketch into the binary wire format.
///
/// # Errors
/// [`CoreError::Wire`] if the tag exceeds `u16::MAX` bytes or the sketch
/// dimension exceeds `u32::MAX` (neither occurs for real configurations).
pub fn encode_sketch(sketch: &NoisySketch) -> Result<Vec<u8>, CoreError> {
    let mut out = encode_header(sketch, WIRE_VERSION, encoded_len)?;
    for v in sketch.values() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    Ok(out)
}

/// Encode a sketch into the quantized v3 wire format: each value is
/// rounded to the nearest `f32` (4 bytes on the wire instead of 8);
/// the noise moments stay `f64`.
///
/// # Errors
/// [`CoreError::Wire`] if the tag or dimension overflow their header
/// fields (as in [`encode_sketch`]), or if rounding a finite value to
/// `f32` overflows to infinity — quantization must never manufacture a
/// frame its own decoder rejects.
pub fn encode_sketch_f32(sketch: &NoisySketch) -> Result<Vec<u8>, CoreError> {
    let mut out = encode_header(sketch, WIRE_VERSION_F32, encoded_len_f32)?;
    for v in sketch.values() {
        let q = *v as f32;
        if !q.is_finite() {
            return Err(CoreError::Wire(format!(
                "sketch coordinate {v:e} overflows f32 quantization"
            )));
        }
        out.extend_from_slice(&q.to_le_bytes());
    }
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    Ok(out)
}

/// Magic through `k` — everything before the values, shared by the two
/// encoders.
fn encode_header(
    sketch: &NoisySketch,
    version: u8,
    len_of: fn(usize, usize) -> usize,
) -> Result<Vec<u8>, CoreError> {
    let tag = sketch.transform_tag().as_bytes();
    let tag_len = u16::try_from(tag.len())
        .map_err(|_| CoreError::Wire(format!("tag too long ({} bytes)", tag.len())))?;
    let k = u32::try_from(sketch.k())
        .map_err(|_| CoreError::Wire(format!("sketch too wide (k = {})", sketch.k())))?;
    let mut out = Vec::with_capacity(len_of(tag.len(), sketch.k()));
    out.extend_from_slice(&SKETCH_MAGIC);
    out.push(version);
    out.extend_from_slice(&tag_len.to_le_bytes());
    out.extend_from_slice(tag);
    out.extend_from_slice(&sketch.noise_second_moment().to_le_bytes());
    out.extend_from_slice(&sketch.noise_fourth_moment().to_le_bytes());
    out.extend_from_slice(&k.to_le_bytes());
    Ok(out)
}
// dp-lint: freeze(sketch-wire-codec) end

/// Decode a sketch, interning nothing (each call allocates its tag).
///
/// # Errors
/// [`CoreError::Wire`] on truncated, mistyped, or wrong-version input.
pub fn decode_sketch(bytes: &[u8]) -> Result<NoisySketch, CoreError> {
    let (sketch, consumed) = decode_sketch_inner(bytes, None)?;
    if consumed != bytes.len() {
        return Err(CoreError::Wire(format!(
            "trailing bytes after sketch ({} of {})",
            consumed,
            bytes.len()
        )));
    }
    Ok(sketch)
}

/// Decode a sketch, sharing tags through `interner`.
///
/// # Errors
/// [`CoreError::Wire`] on malformed input.
pub fn decode_sketch_interned(
    bytes: &[u8],
    interner: &mut TagInterner,
) -> Result<NoisySketch, CoreError> {
    let (sketch, consumed) = decode_sketch_inner(bytes, Some(interner))?;
    if consumed != bytes.len() {
        return Err(CoreError::Wire(format!(
            "trailing bytes after sketch ({} of {})",
            consumed,
            bytes.len()
        )));
    }
    Ok(sketch)
}

/// Decode a sketch from the front of `bytes`, returning it together with
/// the number of bytes consumed (for enclosing framed formats).
///
/// # Errors
/// [`CoreError::Wire`] on malformed input.
pub fn decode_sketch_prefix(
    bytes: &[u8],
    interner: Option<&mut TagInterner>,
) -> Result<(NoisySketch, usize), CoreError> {
    decode_sketch_inner(bytes, interner)
}

fn decode_sketch_inner(
    bytes: &[u8],
    interner: Option<&mut TagInterner>,
) -> Result<(NoisySketch, usize), CoreError> {
    let truncated = || CoreError::Wire("truncated sketch payload".to_string());
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], CoreError> {
        let slice = bytes.get(*pos..*pos + n).ok_or_else(truncated)?;
        *pos += n;
        Ok(slice)
    };

    if take(&mut pos, 4)? != SKETCH_MAGIC {
        return Err(CoreError::Wire(
            "bad magic (not a sketch payload)".to_string(),
        ));
    }
    let version = take(&mut pos, 1)?[0];
    if version != WIRE_VERSION && version != WIRE_VERSION_F32 {
        return Err(CoreError::Wire(format!(
            "unsupported wire version {version} (expected {WIRE_VERSION} or {WIRE_VERSION_F32})"
        )));
    }
    let elem = if version == WIRE_VERSION_F32 { 4 } else { 8 };
    let tag_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2 bytes")) as usize;
    let tag_bytes = take(&mut pos, tag_len)?;
    let tag_str = std::str::from_utf8(tag_bytes)
        .map_err(|e| CoreError::Wire(format!("tag not UTF-8: {e}")))?;
    let tag: Arc<str> = match interner {
        Some(interner) => interner.intern(tag_str),
        None => Arc::from(tag_str),
    };
    let m2 = f64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
    let m4 = f64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
    if !(m2.is_finite() && m4.is_finite()) {
        return Err(CoreError::Wire(format!(
            "non-finite noise moments on the wire (m2 = {m2}, m4 = {m4})"
        )));
    }
    let k = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
    // Bound the allocation by the bytes actually present: a crafted
    // header must not be able to demand a 32 GB Vec before the first
    // element read fails.
    if bytes.len().saturating_sub(pos) < elem * k {
        return Err(truncated());
    }
    let mut values = Vec::with_capacity(k);
    for _ in 0..k {
        // v3 values widen losslessly from f32; both paths land on f64.
        let v = if version == WIRE_VERSION_F32 {
            f64::from(f32::from_le_bytes(
                take(&mut pos, 4)?.try_into().expect("4 bytes"),
            ))
        } else {
            f64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"))
        };
        if !v.is_finite() {
            return Err(CoreError::Wire(format!(
                "non-finite sketch coordinate on the wire ({v})"
            )));
        }
        values.push(v);
    }
    // Trailer: FNV-1a over every byte of this frame before the checksum.
    let covered_end = pos;
    let stored = u64::from_le_bytes(take(&mut pos, CHECKSUM_LEN)?.try_into().expect("8 bytes"));
    let computed = fnv1a64(&bytes[..covered_end]);
    if stored != computed {
        return Err(CoreError::ChecksumMismatch { stored, computed });
    }
    Ok((NoisySketch::new(values, tag, m2, m4), pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NoisySketch {
        NoisySketch::new(vec![1.5, -2.25, 1e-300, 0.0], "sjlt(k=4,seed=7)", 0.5, 0.75)
    }

    #[test]
    fn roundtrip_is_identity() {
        let s = sample();
        let bytes = encode_sketch(&s).unwrap();
        assert_eq!(bytes.len(), encoded_len(s.transform_tag().len(), s.k()));
        let back = decode_sketch(&bytes).unwrap();
        assert_eq!(s, back);
        // Byte-identical re-encode.
        assert_eq!(encode_sketch(&back).unwrap(), bytes);
    }

    #[test]
    fn interner_shares_tags() {
        let s = sample();
        let bytes = encode_sketch(&s).unwrap();
        let mut interner = TagInterner::new();
        let a = decode_sketch_interned(&bytes, &mut interner).unwrap();
        let b = decode_sketch_interned(&bytes, &mut interner).unwrap();
        assert!(Arc::ptr_eq(&a.shared_tag(), &b.shared_tag()));
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn truncation_and_corruption_rejected() {
        let bytes = encode_sketch(&sample()).unwrap();
        for cut in [0, 3, 5, 8, bytes.len() - 1] {
            assert!(decode_sketch(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(decode_sketch(&bad_magic).is_err());
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(decode_sketch(&bad_version).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_sketch(&trailing).is_err());
    }

    #[test]
    fn hostile_headers_rejected_without_allocation() {
        // Header declaring k = u32::MAX with no values present: must be a
        // clean Wire error, not a 32 GB allocation attempt.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SKETCH_MAGIC);
        bytes.push(WIRE_VERSION);
        bytes.extend_from_slice(&0u16.to_le_bytes()); // empty tag
        bytes.extend_from_slice(&0.5f64.to_le_bytes());
        bytes.extend_from_slice(&0.75f64.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_sketch(&bytes), Err(CoreError::Wire(_))));
    }

    #[test]
    fn non_finite_wire_fields_rejected() {
        let good = encode_sketch(&sample()).unwrap();
        let tag_len = "sjlt(k=4,seed=7)".len();
        // m2 sits right after magic+version+tag_len+tag.
        let m2_off = 4 + 1 + 2 + tag_len;
        let mut nan_m2 = good.clone();
        nan_m2[m2_off..m2_off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(matches!(decode_sketch(&nan_m2), Err(CoreError::Wire(_))));
        // First value sits after the moments and k.
        let v_off = m2_off + 8 + 8 + 4;
        let mut inf_value = good;
        inf_value[v_off..v_off + 8].copy_from_slice(&f64::INFINITY.to_le_bytes());
        assert!(matches!(decode_sketch(&inf_value), Err(CoreError::Wire(_))));
    }

    #[test]
    fn fnv1a64_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        // Single-byte flip always changes the digest.
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
        // Incremental folding equals the one-shot digest for any split.
        let data = b"streamed tile results";
        for cut in 0..=data.len() {
            let h = fnv1a64_update(fnv1a64_update(FNV1A64_INIT, &data[..cut]), &data[cut..]);
            assert_eq!(h, fnv1a64(data), "cut at {cut}");
        }
    }

    #[test]
    fn checksum_catches_silent_value_corruption() {
        let bytes = encode_sketch(&sample()).unwrap();
        let tag_len = "sjlt(k=4,seed=7)".len();
        // Flip the lowest bit of the first value's mantissa: the value
        // stays finite, so only the v2 trailer can catch it.
        let v_off = 4 + 1 + 2 + tag_len + 8 + 8 + 4;
        let mut corrupted = bytes.clone();
        corrupted[v_off] ^= 1;
        assert!(matches!(
            decode_sketch(&corrupted),
            Err(CoreError::ChecksumMismatch { .. })
        ));
        // A corrupted trailer itself is caught too.
        let mut bad_trailer = bytes;
        let last = bad_trailer.len() - 1;
        bad_trailer[last] ^= 0xff;
        assert!(matches!(
            decode_sketch(&bad_trailer),
            Err(CoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let bytes = encode_sketch(&sample()).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(decode_sketch(&bad).is_err(), "corrupt byte {i} decoded");
        }
    }

    #[test]
    fn f32_roundtrip_widens_losslessly() {
        let s = sample();
        let bytes = encode_sketch_f32(&s).unwrap();
        assert_eq!(bytes.len(), encoded_len_f32(s.transform_tag().len(), s.k()));
        // Half the value payload of the f64 frame.
        assert_eq!(
            encode_sketch(&s).unwrap().len() - bytes.len(),
            4 * s.k(),
            "v3 saves exactly 4 bytes per coordinate"
        );
        let back = decode_sketch(&bytes).unwrap();
        assert_eq!(back.k(), s.k());
        assert_eq!(back.transform_tag(), s.transform_tag());
        assert_eq!(back.noise_second_moment(), s.noise_second_moment());
        for (orig, quant) in s.values().iter().zip(back.values()) {
            // Widened value is exactly the f32 rounding of the original.
            assert_eq!(quant.to_bits(), f64::from(*orig as f32).to_bits());
        }
        // A re-encode of the quantized sketch is byte-identical: f64 →
        // f32 is idempotent once the value is f32-representable.
        assert_eq!(encode_sketch_f32(&back).unwrap(), bytes);
    }

    #[test]
    fn f32_every_single_byte_corruption_is_rejected() {
        let bytes = encode_sketch_f32(&sample()).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(decode_sketch(&bad).is_err(), "corrupt byte {i} decoded");
        }
    }

    #[test]
    fn f32_overflow_is_refused_at_encode() {
        // Finite in f64, infinite after f32 rounding.
        let s = NoisySketch::new(vec![1e300], "tag", 0.5, 0.75);
        assert!(matches!(encode_sketch_f32(&s), Err(CoreError::Wire(_))));
    }

    #[test]
    fn f32_hostile_header_rejected_without_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SKETCH_MAGIC);
        bytes.push(WIRE_VERSION_F32);
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&0.5f64.to_le_bytes());
        bytes.extend_from_slice(&0.75f64.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_sketch(&bytes), Err(CoreError::Wire(_))));
    }

    #[test]
    fn prefix_decode_reports_consumed() {
        let s = sample();
        let mut bytes = encode_sketch(&s).unwrap();
        let len = bytes.len();
        bytes.extend_from_slice(b"suffix");
        let (back, consumed) = decode_sketch_prefix(&bytes, None).unwrap();
        assert_eq!(back, s);
        assert_eq!(consumed, len);
    }
}
