//! End-to-end configuration: the paper's decision rules in one builder.
//!
//! Given `(d, α, β, ε)` and optionally `δ`, [`SketchConfig`] derives
//! `k = Θ(α⁻² ln(1/β))` (rounded for the SJLT blocks), the sparsity
//! `s = O(α⁻¹ ln(1/β))`, the hash independence, and the Note 5 noise
//! choice for the SJLT (`Laplace` iff `δ < e^{−s}` or no δ was budgeted).

use crate::error::CoreError;
use dp_noise::mechanism::{select_mechanism, MechanismChoice};
use dp_transforms::JlParams;

/// Validated sketch configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchConfig {
    d: usize,
    params: JlParams,
    epsilon: f64,
    delta: Option<f64>,
}

impl SketchConfig {
    /// Start building a configuration.
    #[must_use]
    pub fn builder() -> SketchConfigBuilder {
        SketchConfigBuilder::default()
    }

    /// Input dimension `d`.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.d
    }

    /// JL parameters (α, β and the derived k, s).
    #[must_use]
    pub fn jl(&self) -> &JlParams {
        &self.params
    }

    /// Privacy parameter ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Optional approximate-DP budget δ.
    #[must_use]
    pub fn delta(&self) -> Option<f64> {
        self.delta
    }

    /// Output dimension for dense transforms.
    #[must_use]
    pub fn k(&self) -> usize {
        self.params.k()
    }

    /// Output dimension for the SJLT (rounded to a multiple of `s`).
    #[must_use]
    pub fn k_sjlt(&self) -> usize {
        self.params.k_for_sjlt()
    }

    /// SJLT sparsity `s`.
    #[must_use]
    pub fn s(&self) -> usize {
        self.params.s()
    }

    /// The Note 5 noise choice for the SJLT (`∆₁ = √s`, `∆₂ = 1`):
    /// Laplace iff `δ < e^{−s}` (or no δ at all).
    #[must_use]
    pub fn sjlt_noise_choice(&self) -> MechanismChoice {
        select_mechanism((self.s() as f64).sqrt(), 1.0, self.delta)
    }

    /// The δ threshold below which Laplace wins for the SJLT: `e^{−s}`
    /// (§6.2.3 / §7).
    #[must_use]
    pub fn laplace_delta_threshold(&self) -> f64 {
        (-(self.s() as f64)).exp()
    }
}

/// Builder for [`SketchConfig`].
#[derive(Debug, Clone, Default)]
pub struct SketchConfigBuilder {
    input_dim: Option<usize>,
    alpha: Option<f64>,
    beta: Option<f64>,
    epsilon: Option<f64>,
    delta: Option<f64>,
    k_const: Option<f64>,
    s_const: Option<f64>,
}

impl SketchConfigBuilder {
    /// Input dimension `d` (required).
    #[must_use]
    pub fn input_dim(mut self, d: usize) -> Self {
        self.input_dim = Some(d);
        self
    }

    /// JL accuracy α ∈ (0, 1/2) (default 0.1).
    #[must_use]
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// JL failure probability β ∈ (0, 1/2) (default 0.05).
    #[must_use]
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = Some(beta);
        self
    }

    /// Privacy parameter ε (required).
    #[must_use]
    pub fn epsilon(mut self, eps: f64) -> Self {
        self.epsilon = Some(eps);
        self
    }

    /// Approximate-DP budget δ (optional; omitting it forces pure DP
    /// and hence Laplace noise).
    #[must_use]
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Override the Θ-constant for `k` (ablation experiments).
    #[must_use]
    pub fn k_const(mut self, c: f64) -> Self {
        self.k_const = Some(c);
        self
    }

    /// Override the Θ-constant for `s` (ablation experiments).
    #[must_use]
    pub fn s_const(mut self, c: f64) -> Self {
        self.s_const = Some(c);
        self
    }

    /// Validate and build.
    ///
    /// # Errors
    /// [`CoreError::MissingField`] for absent required fields;
    /// [`CoreError::Transform`]/[`CoreError::Noise`] for invalid values.
    pub fn build(self) -> Result<SketchConfig, CoreError> {
        let d = self.input_dim.ok_or(CoreError::MissingField("input_dim"))?;
        if d == 0 {
            return Err(dp_transforms::TransformError::InvalidDimensions { d, k: 0 }.into());
        }
        let epsilon = self.epsilon.ok_or(CoreError::MissingField("epsilon"))?;
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(dp_noise::NoiseError::InvalidEpsilon(epsilon).into());
        }
        if let Some(delta) = self.delta {
            if !(delta > 0.0 && delta < 1.0) {
                return Err(dp_noise::NoiseError::InvalidDelta(delta).into());
            }
        }
        let alpha = self.alpha.unwrap_or(0.1);
        let beta = self.beta.unwrap_or(0.05);
        let params = JlParams::with_constants(
            alpha,
            beta,
            self.k_const.unwrap_or(8.0),
            self.s_const.unwrap_or(2.0),
        )?;
        Ok(SketchConfig {
            d,
            params,
            epsilon,
            delta: self.delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SketchConfigBuilder {
        SketchConfig::builder().input_dim(1024).epsilon(1.0)
    }

    #[test]
    fn defaults_applied() {
        let c = base().build().unwrap();
        assert_eq!(c.input_dim(), 1024);
        assert!((c.jl().alpha() - 0.1).abs() < 1e-12);
        assert!((c.jl().beta() - 0.05).abs() < 1e-12);
        assert!(c.delta().is_none());
    }

    #[test]
    fn missing_fields_rejected() {
        assert_eq!(
            SketchConfig::builder().epsilon(1.0).build().unwrap_err(),
            CoreError::MissingField("input_dim")
        );
        assert_eq!(
            SketchConfig::builder().input_dim(8).build().unwrap_err(),
            CoreError::MissingField("epsilon")
        );
    }

    #[test]
    fn invalid_values_rejected() {
        assert!(base().epsilon(-1.0).build().is_err());
        assert!(base().delta(0.0).build().is_err());
        assert!(base().delta(1.0).build().is_err());
        assert!(base().alpha(0.6).build().is_err());
        assert!(SketchConfig::builder()
            .input_dim(0)
            .epsilon(1.0)
            .build()
            .is_err());
    }

    #[test]
    fn sjlt_shape_consistency() {
        let c = base().alpha(0.2).beta(0.01).build().unwrap();
        assert_eq!(c.k_sjlt() % c.s(), 0);
        assert!(c.k_sjlt() >= c.k());
        assert!(c.s() >= 1);
    }

    #[test]
    fn note5_choice_tracks_delta() {
        let no_delta = base().build().unwrap();
        assert_eq!(no_delta.sjlt_noise_choice(), MechanismChoice::Laplace);

        let tiny_delta = base().delta(1e-300).build().unwrap();
        assert_eq!(tiny_delta.sjlt_noise_choice(), MechanismChoice::Laplace);

        let huge_delta = base().delta(0.3).build().unwrap();
        assert_eq!(huge_delta.sjlt_noise_choice(), MechanismChoice::Gaussian);
    }

    #[test]
    fn threshold_is_exp_minus_s() {
        let c = base().build().unwrap();
        let want = (-(c.s() as f64)).exp();
        assert!((c.laplace_delta_threshold() - want).abs() < 1e-300);
    }

    #[test]
    fn constant_overrides_change_k() {
        let small = base().k_const(1.0).build().unwrap();
        let big = base().k_const(16.0).build().unwrap();
        assert!(big.k() > small.k());
    }
}
