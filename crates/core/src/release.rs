//! The released frame of the distributed protocol: a sketch plus the
//! sender's identity, with binary and JSON wire forms.
//!
//! A [`Release`] is what actually crosses a trust boundary: one
//! differentially private [`NoisySketch`] attributed to a `party_id`.
//! The binary layout (all integers little-endian) is
//!
//! ```text
//! magic    4 bytes  b"DPRL"
//! version  1 byte   currently 2
//! party_id 8 bytes  u64
//! sketch   …        an embedded DPNS sketch frame (see [`crate::wire`])
//! checksum 8 bytes  u64, FNV-1a-64 over every preceding byte
//! ```
//!
//! The embedded sketch carries its own v2 trailer; the outer checksum
//! additionally covers the release header, so a corrupted `party_id`
//! cannot silently misattribute a sketch.
//!
//! This module lives in `dp_core` (rather than the streaming layer) so
//! that every consumer of releases — the distributed protocol in
//! `dp_stream`, the `dp-engine` sketch store, and the `dp-server`
//! protocol — shares one parser and one [`TagInterner`] discipline.
//! `dp_stream::distributed` re-exports everything here for
//! compatibility.

use crate::error::CoreError;
use crate::estimator::NoisySketch;
use crate::json::{self, JsonValue};
use crate::wire::{self, TagInterner};

/// Magic prefix of a binary-framed [`Release`].
pub const RELEASE_MAGIC: [u8; 4] = *b"DPRL";

/// The wire format of a release: the sketch plus the sender's id.
#[derive(Debug, Clone, PartialEq)]
pub struct Release {
    /// Sender identity (not private — the protocol releases per-party
    /// sketches publicly).
    pub party_id: u64,
    /// The differentially private sketch.
    pub sketch: NoisySketch,
}

impl Release {
    /// Encode as the compact binary wire format:
    /// `b"DPRL" | version | party_id (u64 LE) | sketch payload |
    /// checksum (u64 LE)`.
    ///
    /// The embedded sketch payload carries its own v2 trailer; the outer
    /// checksum (FNV-1a-64 over every preceding byte of this frame)
    /// additionally covers the release header, so a corrupted
    /// `party_id` cannot silently misattribute a sketch.
    ///
    /// # Errors
    /// Propagates sketch encoding failures.
    pub fn to_bytes(&self) -> Result<Vec<u8>, CoreError> {
        self.frame(wire::encode_sketch(&self.sketch)?)
    }

    /// Like [`Self::to_bytes`], but the embedded sketch uses the
    /// quantized v3 (`f32` values) wire variant — half the bytes per
    /// coordinate. The outer release header is unchanged (still
    /// version 2; the embedded DPNS frame carries its own version
    /// byte), so any v5-era parser accepts both framings. Only ship
    /// this to a peer that advertised
    /// [`crate::protocol::CAP_SKETCH_F32`].
    ///
    /// # Errors
    /// Propagates sketch encoding failures, including values that
    /// overflow `f32` quantization.
    pub fn to_bytes_f32(&self) -> Result<Vec<u8>, CoreError> {
        self.frame(wire::encode_sketch_f32(&self.sketch)?)
    }

    fn frame(&self, sketch: Vec<u8>) -> Result<Vec<u8>, CoreError> {
        let mut out = Vec::with_capacity(4 + 1 + 8 + sketch.len() + wire::CHECKSUM_LEN);
        out.extend_from_slice(&RELEASE_MAGIC);
        out.push(wire::WIRE_VERSION);
        out.extend_from_slice(&self.party_id.to_le_bytes());
        out.extend_from_slice(&sketch);
        let checksum = wire::fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        Ok(out)
    }

    /// Encode as the JSON compatibility wire format.
    #[must_use]
    pub fn to_json(&self) -> String {
        JsonValue::Object(vec![
            ("party_id".to_string(), JsonValue::UInt(self.party_id)),
            ("sketch".to_string(), self.sketch.to_json_value()),
        ])
        .to_string()
    }
}

/// Parse a JSON release from the wire.
///
/// # Errors
/// [`CoreError::Wire`] on malformed input.
pub fn parse_release(text: &str) -> Result<Release, CoreError> {
    let v = json::parse(text).map_err(CoreError::Wire)?;
    let party_id = v
        .get("party_id")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| CoreError::Wire("missing/invalid field 'party_id'".to_string()))?;
    let sketch_value = v
        .get("sketch")
        .ok_or_else(|| CoreError::Wire("missing field 'sketch'".to_string()))?;
    Ok(Release {
        party_id,
        sketch: NoisySketch::from_json_value(sketch_value)?,
    })
}

/// Parse a binary release from the wire, interning the transform tag.
///
/// # Errors
/// [`CoreError::Wire`] on malformed input.
pub fn parse_release_bytes(bytes: &[u8], interner: &mut TagInterner) -> Result<Release, CoreError> {
    let truncated = || CoreError::Wire("truncated release payload".to_string());
    if bytes.get(..4).ok_or_else(truncated)? != RELEASE_MAGIC {
        return Err(CoreError::Wire(
            "bad magic (not a release payload)".to_string(),
        ));
    }
    let version = *bytes.get(4).ok_or_else(truncated)?;
    if version != wire::WIRE_VERSION {
        return Err(CoreError::Wire(format!(
            "unsupported wire version {version} (expected {})",
            wire::WIRE_VERSION
        )));
    }
    let party_id = u64::from_le_bytes(
        bytes
            .get(5..13)
            .ok_or_else(truncated)?
            .try_into()
            .expect("8 bytes"),
    );
    let (sketch, consumed) = wire::decode_sketch_prefix(&bytes[13..], Some(interner))?;
    let covered = 13 + consumed;
    let stored = u64::from_le_bytes(
        bytes
            .get(covered..covered + wire::CHECKSUM_LEN)
            .ok_or_else(truncated)?
            .try_into()
            .expect("8 bytes"),
    );
    let computed = wire::fnv1a64(&bytes[..covered]);
    if stored != computed {
        return Err(CoreError::ChecksumMismatch { stored, computed });
    }
    if covered + wire::CHECKSUM_LEN != bytes.len() {
        return Err(CoreError::Wire("trailing bytes after release".to_string()));
    }
    Ok(Release { party_id, sketch })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(party_id: u64) -> Release {
        Release {
            party_id,
            sketch: NoisySketch::new(vec![1.5, -2.25, 0.0], "sjlt(k=3,seed=7)", 0.5, 0.75),
        }
    }

    #[test]
    fn binary_roundtrip_is_identity() {
        let r = sample(42);
        let bytes = r.to_bytes().unwrap();
        let mut interner = TagInterner::new();
        let back = parse_release_bytes(&bytes, &mut interner).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_bytes().unwrap(), bytes);
    }

    #[test]
    fn f32_framing_roundtrips_quantized() {
        let r = sample(42);
        let bytes = r.to_bytes_f32().unwrap();
        assert_eq!(
            r.to_bytes().unwrap().len() - bytes.len(),
            4 * r.sketch.k(),
            "f32 framing saves 4 bytes per coordinate"
        );
        let mut interner = TagInterner::new();
        let back = parse_release_bytes(&bytes, &mut interner).unwrap();
        assert_eq!(back.party_id, r.party_id);
        for (orig, quant) in r.sketch.values().iter().zip(back.sketch.values()) {
            assert_eq!(quant.to_bits(), f64::from(*orig as f32).to_bits());
        }
        // Sample values are exactly f32-representable, so this
        // particular roundtrip is lossless end to end.
        assert_eq!(back, r);
    }

    #[test]
    fn f32_every_single_byte_corruption_is_rejected() {
        let bytes = sample(3).to_bytes_f32().unwrap();
        let mut interner = TagInterner::new();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                parse_release_bytes(&bad, &mut interner).is_err(),
                "corrupt byte {i} decoded"
            );
        }
    }

    #[test]
    fn json_roundtrip_agrees() {
        let r = sample(7);
        assert_eq!(parse_release(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let bytes = sample(3).to_bytes().unwrap();
        let mut interner = TagInterner::new();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                parse_release_bytes(&bad, &mut interner).is_err(),
                "corrupt byte {i} decoded"
            );
        }
    }
}
