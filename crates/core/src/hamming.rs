//! Binary-vector (Hamming) specialization of the distance estimator.
//!
//! For `x, y ∈ {0,1}^d` the squared Euclidean distance *is* the Hamming
//! distance, the setting of the paper's §2.4 lower-bound discussion
//! (McGregor et al.; randomized response). This wrapper adds the
//! domain knowledge the generic estimator can't use:
//!
//! * the true value is an integer in `[0, d]` → the estimate is rounded
//!   and clamped (strictly reduces MSE; the unbiased raw value is kept
//!   alongside);
//! * a calibrated comparison against the ε-DP randomized-response
//!   baseline, implementing the §2.4 rule of thumb: RR's `O(√d)` error
//!   wins for small `d`, the sketch's `Õ(√k)` noise floor wins once
//!   `d ≫ k`.

use crate::config::SketchConfig;
use crate::error::CoreError;
use crate::estimator::NoisySketch;
use crate::sjlt_private::PrivateSjlt;
use crate::variance::var_sjlt_laplace;
use dp_hashing::Seed;
use dp_noise::randomized_response::RandomizedResponse;

/// Hamming-distance estimator over the private SJLT.
#[derive(Debug, Clone)]
pub struct HammingSketcher {
    inner: PrivateSjlt,
    d: usize,
    epsilon: f64,
}

/// A Hamming estimate with both the raw unbiased value and the
/// domain-clamped one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HammingEstimate {
    /// The raw, unbiased (possibly negative / fractional) estimate.
    pub raw: f64,
    /// Rounded and clamped to `[0, d]`.
    pub clamped: u64,
}

impl HammingSketcher {
    /// Build over binary inputs of dimension `d` (pure ε-DP via Laplace).
    ///
    /// # Errors
    /// Propagates construction failures.
    pub fn new(config: &SketchConfig, transform_seed: Seed) -> Result<Self, CoreError> {
        Ok(Self {
            inner: PrivateSjlt::with_laplace(config, transform_seed)?,
            d: config.input_dim(),
            epsilon: config.epsilon(),
        })
    }

    /// The wrapped sketcher.
    #[must_use]
    pub fn inner(&self) -> &PrivateSjlt {
        &self.inner
    }

    /// Release a sketch of a binary vector.
    ///
    /// # Errors
    /// [`CoreError::Transform`] on bad dimension; panics on non-binary
    /// entries are avoided — they are rejected as an error.
    pub fn sketch(&self, bits: &[f64], noise_seed: Seed) -> Result<NoisySketch, CoreError> {
        if bits.iter().any(|&b| b != 0.0 && b != 1.0) {
            return Err(CoreError::CalibrationPrecondition(
                "HammingSketcher requires binary inputs".to_string(),
            ));
        }
        self.inner.try_sketch(bits, noise_seed)
    }

    /// Estimate the Hamming distance between two released sketches.
    ///
    /// # Errors
    /// [`CoreError::IncompatibleSketches`] on mismatched sketches.
    pub fn estimate(&self, a: &NoisySketch, b: &NoisySketch) -> Result<HammingEstimate, CoreError> {
        let raw = a.estimate_sq_distance(b)?;
        let clamped = raw.round().clamp(0.0, self.d as f64) as u64;
        Ok(HammingEstimate { raw, clamped })
    }

    /// Predicted RMSE of the sketch estimator at true Hamming distance
    /// `h` (Theorem 3 variance, conservative `‖z‖₄⁴ = 0` form... for
    /// binary differences `‖z‖₄⁴ = ‖z‖₂² = h`, which we use exactly).
    #[must_use]
    pub fn predicted_rmse(&self, h: u64) -> f64 {
        let hf = h as f64;
        var_sjlt_laplace(self.inner.k(), self.inner.s(), self.epsilon, hf, hf).sqrt()
    }

    /// §2.4 decision rule: does the sketch beat ε-DP randomized response
    /// at this dimension and distance? Compares predicted RMSEs.
    #[must_use]
    pub fn beats_randomized_response(&self, h: u64) -> bool {
        let rr = RandomizedResponse::new(self.epsilon).expect("validated epsilon");
        self.predicted_rmse(h) < rr.error_stddev_bound(self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_stats::Summary;

    fn config(d: usize) -> SketchConfig {
        SketchConfig::builder()
            .input_dim(d)
            .alpha(0.25)
            .beta(0.05)
            .epsilon(1.0)
            .build()
            .expect("config")
    }

    #[test]
    fn rejects_non_binary() {
        let h = HammingSketcher::new(&config(16), Seed::new(1)).expect("build");
        let mut x = vec![0.0; 16];
        x[3] = 0.5;
        assert!(matches!(
            h.sketch(&x, Seed::new(2)),
            Err(CoreError::CalibrationPrecondition(_))
        ));
    }

    #[test]
    fn clamped_estimate_in_range() {
        let d = 64;
        let h = HammingSketcher::new(&config(d), Seed::new(1)).expect("build");
        let x = vec![0.0; d];
        let y = vec![1.0; d];
        for rep in 0..50u64 {
            let a = h.sketch(&x, Seed::new(100 + rep)).expect("sketch");
            let b = h.sketch(&y, Seed::new(200 + rep)).expect("sketch");
            let est = h.estimate(&a, &b).expect("estimate");
            assert!(est.clamped <= d as u64);
        }
    }

    #[test]
    fn unbiased_on_raw_and_clamping_helps() {
        let d = 128;
        let cfg = config(d);
        let x = vec![0.0; d];
        let mut y = vec![0.0; d];
        for bit in y.iter_mut().take(40) {
            *bit = 1.0;
        }
        let mut raw = Summary::new();
        let mut clamped_se = Summary::new();
        let mut raw_se = Summary::new();
        for rep in 0..800u64 {
            let h = HammingSketcher::new(&cfg, Seed::new(rep)).expect("build");
            let a = h.sketch(&x, Seed::new(1000 + rep)).expect("sketch");
            let b = h.sketch(&y, Seed::new(9000 + rep)).expect("sketch");
            let est = h.estimate(&a, &b).expect("estimate");
            raw.push(est.raw);
            raw_se.push((est.raw - 40.0) * (est.raw - 40.0));
            let c = est.clamped as f64;
            clamped_se.push((c - 40.0) * (c - 40.0));
        }
        let z = (raw.mean() - 40.0).abs() / raw.stderr();
        assert!(z < 5.0, "raw bias z {z}");
        assert!(
            clamped_se.mean() <= raw_se.mean(),
            "clamping must not increase MSE: {} vs {}",
            clamped_se.mean(),
            raw_se.mean()
        );
    }

    #[test]
    fn rr_comparison_rule_flips_with_dimension() {
        // Small d: RR (error ~ √d) should win; huge d: the sketch should.
        let small = HammingSketcher::new(&config(64), Seed::new(1)).expect("build");
        let huge = HammingSketcher::new(&config(1 << 22), Seed::new(1)).expect("build");
        let h = 32;
        assert!(!small.beats_randomized_response(h), "RR wins at small d");
        assert!(huge.beats_randomized_response(h), "sketch wins at huge d");
    }

    #[test]
    fn predicted_rmse_uses_exact_l4_term() {
        let hsk = HammingSketcher::new(&config(64), Seed::new(1)).expect("build");
        // For binary differences the exact variance uses ‖z‖₄⁴ = h:
        let h = 16u64;
        let loose = var_sjlt_laplace(hsk.inner().k(), hsk.inner().s(), 1.0, h as f64, 0.0);
        assert!(hsk.predicted_rmse(h).powi(2) <= loose);
    }
}
