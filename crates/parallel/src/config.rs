//! The [`Parallelism`] knob threaded through the execution paths.

use std::fmt;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Default side length of a pairwise tile. 64 rows × 64 cols of `f64`
/// estimates keep two sketch blocks plus the output tile comfortably in
/// L2 for JL-sized `k`.
pub const DEFAULT_TILE: usize = 64;

/// Environment variable overriding the worker-thread count
/// (`0` or unset → one worker per available hardware thread).
pub const THREADS_ENV: &str = "DP_THREADS";

/// Environment variable overriding the pairwise tile side length.
pub const TILE_ENV: &str = "DP_TILE";

/// Environment variable selecting the distance-kernel version
/// (`scalar`/`v1`/`v1-scalar` → [`KernelId::V1Scalar`];
/// `simd`/`v2`/`v2-simd` → [`KernelId::V2Simd`]; unset/garbage → V1).
pub const KERNEL_ENV: &str = "DP_KERNEL";

/// The versioned identity of the per-pair distance accumulator.
///
/// Unlike threads and tile size, the kernel version **changes result
/// bits**: V2 reassociates the accumulation (SIMD lanes + fused
/// multiply-add), so the determinism contract is scoped *per version* —
/// results are bit-identical across threads/tiles/shards within one
/// `KernelId`, and a fleet must agree on one kernel per store (the
/// protocol negotiates it on `Hello` and refuses mismatches with a
/// typed `ERR_KERNEL`). The actual accumulator implementations live in
/// `dp_core::kernel`; this type is defined here so the [`Parallelism`]
/// knob can carry it without a dependency cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelId {
    /// The original strictly sequential zip-order scalar accumulator —
    /// the historic bit-identity anchor, and the default.
    #[default]
    V1Scalar,
    /// Explicit-width SIMD: 4 independent f64 lane accumulators with
    /// fused multiply-add and a scalar tail (runtime-detected AVX2/FMA
    /// on `x86_64`, a bit-identical unrolled portable path elsewhere).
    V2Simd,
}

impl KernelId {
    /// Stable wire/JSON name (`v1-scalar` / `v2-simd`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::V1Scalar => "v1-scalar",
            Self::V2Simd => "v2-simd",
        }
    }

    /// Parse a kernel name as accepted by [`KERNEL_ENV`] and the spec
    /// JSON. Returns `None` on an unknown name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" | "v1" | "v1-scalar" => Some(Self::V1Scalar),
            "simd" | "v2" | "v2-simd" => Some(Self::V2Simd),
            _ => None,
        }
    }

    /// One-byte wire code (protocol `Hello` negotiation).
    #[must_use]
    pub fn wire_code(self) -> u8 {
        match self {
            Self::V1Scalar => 1,
            Self::V2Simd => 2,
        }
    }

    /// Inverse of [`KernelId::wire_code`].
    #[must_use]
    pub fn from_wire_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::V1Scalar),
            2 => Some(Self::V2Simd),
            _ => None,
        }
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Hard upper bound on the worker count. Oversubscription is allowed
/// (tests deliberately run 8 workers on 1 core), but a typo'd
/// `DP_THREADS=100000` must not ask the OS for a hundred thousand
/// threads — scoped-spawn failure past the OS limit is a panic, not a
/// recoverable error.
pub const MAX_THREADS: usize = 512;

/// How much hardware an execution path may use — worker-thread count
/// and pairwise tile size, with a guaranteed sequential fallback at
/// `threads = 1` — plus *which version* of the distance kernel runs
/// ([`KernelId`]).
///
/// Threads and tile size never change *results* — every consumer in
/// this workspace is bit-identical across thread counts and tile sizes.
/// The kernel id is different: it selects the floating-point expression
/// itself, so results are bit-identical only *within* one kernel
/// version (see [`KernelId`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
    tile: usize,
    kernel: KernelId,
}

impl Parallelism {
    /// Run everything on the calling thread (the reference path:
    /// one thread, default tile, the V1 scalar kernel).
    #[must_use]
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            tile: DEFAULT_TILE,
            kernel: KernelId::V1Scalar,
        }
    }

    /// Use `threads` workers (`0` → one per available hardware thread;
    /// clamped to [`MAX_THREADS`]). The kernel stays V1 scalar; opt
    /// into V2 explicitly via [`Parallelism::with_kernel`] or the
    /// [`KERNEL_ENV`]-driven [`Parallelism::from_env`].
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: resolve_threads(threads),
            tile: DEFAULT_TILE,
            kernel: KernelId::V1Scalar,
        }
    }

    /// Read the knob from the environment: [`THREADS_ENV`] for the
    /// worker count (`0`/unset/garbage → auto), [`TILE_ENV`] for the
    /// tile side length (unset/garbage → [`DEFAULT_TILE`]), and
    /// [`KERNEL_ENV`] for the kernel version (unset/garbage →
    /// [`KernelId::V1Scalar`]).
    ///
    /// The environment is read **once per process** and cached — the
    /// default-parallelism APIs sit on per-request paths, and two
    /// getenv lookups plus an `available_parallelism` syscall per
    /// pairwise query would be pure waste. Changing the variables after
    /// the first call has no effect; use the builder methods for
    /// runtime control.
    #[must_use]
    pub fn from_env() -> Self {
        static CACHED: OnceLock<Parallelism> = OnceLock::new();
        *CACHED.get_or_init(|| {
            let threads = env_usize(THREADS_ENV).unwrap_or(0);
            let tile = env_usize(TILE_ENV).unwrap_or(DEFAULT_TILE);
            let kernel = std::env::var(KERNEL_ENV)
                .ok()
                .and_then(|v| KernelId::parse(&v))
                .unwrap_or_default();
            Self::new(threads).with_tile(tile).with_kernel(kernel)
        })
    }

    /// Replace the worker count (`0` → auto).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = resolve_threads(threads);
        self
    }

    /// Replace the tile side length (clamped to at least 1).
    #[must_use]
    pub fn with_tile(mut self, tile: usize) -> Self {
        self.tile = tile.max(1);
        self
    }

    /// Replace the distance-kernel version. Unlike the other builders
    /// this one changes result bits — see [`KernelId`].
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelId) -> Self {
        self.kernel = kernel;
        self
    }

    /// Resolved worker count (always ≥ 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Pairwise tile side length (always ≥ 1).
    #[must_use]
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// The distance-kernel version in effect.
    #[must_use]
    pub fn kernel(&self) -> KernelId {
        self.kernel
    }

    /// Whether every consumer will run on the calling thread only.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }
}

impl Default for Parallelism {
    /// The environment-driven knob ([`Parallelism::from_env`], cached
    /// per process).
    fn default() -> Self {
        Self::from_env()
    }
}

/// `0` means "ask the OS"; anything else is taken literally up to the
/// [`MAX_THREADS`] safety clamp.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
    } else {
        threads.min(MAX_THREADS)
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_one_thread() {
        let p = Parallelism::sequential();
        assert_eq!(p.threads(), 1);
        assert!(p.is_sequential());
        assert_eq!(p.tile(), DEFAULT_TILE);
    }

    #[test]
    fn zero_resolves_to_hardware() {
        let p = Parallelism::new(0);
        assert!(p.threads() >= 1);
        let q = Parallelism::new(5);
        assert_eq!(q.threads(), 5);
        assert!(!q.is_sequential());
    }

    #[test]
    fn absurd_thread_counts_are_clamped() {
        assert_eq!(Parallelism::new(100_000).threads(), MAX_THREADS);
        assert_eq!(
            Parallelism::sequential().with_threads(usize::MAX).threads(),
            MAX_THREADS
        );
        assert_eq!(Parallelism::new(MAX_THREADS).threads(), MAX_THREADS);
    }

    #[test]
    fn tile_clamped_to_one() {
        assert_eq!(Parallelism::sequential().with_tile(0).tile(), 1);
        assert_eq!(Parallelism::sequential().with_tile(17).tile(), 17);
    }

    #[test]
    fn builders_compose() {
        let p = Parallelism::new(3).with_tile(8).with_threads(2);
        assert_eq!((p.threads(), p.tile()), (2, 8));
        assert_eq!(p.kernel(), KernelId::V1Scalar);
        assert_eq!(p.with_kernel(KernelId::V2Simd).kernel(), KernelId::V2Simd);
    }

    #[test]
    fn kernel_names_roundtrip() {
        for kernel in [KernelId::V1Scalar, KernelId::V2Simd] {
            assert_eq!(KernelId::parse(kernel.name()), Some(kernel));
            assert_eq!(KernelId::from_wire_code(kernel.wire_code()), Some(kernel));
            assert_eq!(kernel.to_string(), kernel.name());
        }
        assert_eq!(KernelId::parse("scalar"), Some(KernelId::V1Scalar));
        assert_eq!(KernelId::parse("SIMD"), Some(KernelId::V2Simd));
        assert_eq!(KernelId::parse("v3-quantum"), None);
        assert_eq!(KernelId::from_wire_code(0), None);
        assert_eq!(KernelId::from_wire_code(9), None);
        assert_eq!(KernelId::default(), KernelId::V1Scalar);
    }
}
