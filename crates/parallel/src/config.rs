//! The [`Parallelism`] knob threaded through the execution paths.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Default side length of a pairwise tile. 64 rows × 64 cols of `f64`
/// estimates keep two sketch blocks plus the output tile comfortably in
/// L2 for JL-sized `k`.
pub const DEFAULT_TILE: usize = 64;

/// Environment variable overriding the worker-thread count
/// (`0` or unset → one worker per available hardware thread).
pub const THREADS_ENV: &str = "DP_THREADS";

/// Environment variable overriding the pairwise tile side length.
pub const TILE_ENV: &str = "DP_TILE";

/// Hard upper bound on the worker count. Oversubscription is allowed
/// (tests deliberately run 8 workers on 1 core), but a typo'd
/// `DP_THREADS=100000` must not ask the OS for a hundred thousand
/// threads — scoped-spawn failure past the OS limit is a panic, not a
/// recoverable error.
pub const MAX_THREADS: usize = 512;

/// How much hardware an execution path may use: worker-thread count and
/// pairwise tile size, with a guaranteed sequential fallback at
/// `threads = 1`.
///
/// The knob never changes *results* — every consumer in this workspace
/// is bit-identical across thread counts and tile sizes — only how the
/// work is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
    tile: usize,
}

impl Parallelism {
    /// Run everything on the calling thread (the reference path).
    #[must_use]
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            tile: DEFAULT_TILE,
        }
    }

    /// Use `threads` workers (`0` → one per available hardware thread;
    /// clamped to [`MAX_THREADS`]).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: resolve_threads(threads),
            tile: DEFAULT_TILE,
        }
    }

    /// Read the knob from the environment: [`THREADS_ENV`] for the
    /// worker count (`0`/unset/garbage → auto) and [`TILE_ENV`] for the
    /// tile side length (unset/garbage → [`DEFAULT_TILE`]).
    ///
    /// The environment is read **once per process** and cached — the
    /// default-parallelism APIs sit on per-request paths, and two
    /// getenv lookups plus an `available_parallelism` syscall per
    /// pairwise query would be pure waste. Changing the variables after
    /// the first call has no effect; use the builder methods for
    /// runtime control.
    #[must_use]
    pub fn from_env() -> Self {
        static CACHED: OnceLock<Parallelism> = OnceLock::new();
        *CACHED.get_or_init(|| {
            let threads = env_usize(THREADS_ENV).unwrap_or(0);
            let tile = env_usize(TILE_ENV).unwrap_or(DEFAULT_TILE);
            Self::new(threads).with_tile(tile)
        })
    }

    /// Replace the worker count (`0` → auto).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = resolve_threads(threads);
        self
    }

    /// Replace the tile side length (clamped to at least 1).
    #[must_use]
    pub fn with_tile(mut self, tile: usize) -> Self {
        self.tile = tile.max(1);
        self
    }

    /// Resolved worker count (always ≥ 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Pairwise tile side length (always ≥ 1).
    #[must_use]
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Whether every consumer will run on the calling thread only.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }
}

impl Default for Parallelism {
    /// The environment-driven knob ([`Parallelism::from_env`], cached
    /// per process).
    fn default() -> Self {
        Self::from_env()
    }
}

/// `0` means "ask the OS"; anything else is taken literally up to the
/// [`MAX_THREADS`] safety clamp.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
    } else {
        threads.min(MAX_THREADS)
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_one_thread() {
        let p = Parallelism::sequential();
        assert_eq!(p.threads(), 1);
        assert!(p.is_sequential());
        assert_eq!(p.tile(), DEFAULT_TILE);
    }

    #[test]
    fn zero_resolves_to_hardware() {
        let p = Parallelism::new(0);
        assert!(p.threads() >= 1);
        let q = Parallelism::new(5);
        assert_eq!(q.threads(), 5);
        assert!(!q.is_sequential());
    }

    #[test]
    fn absurd_thread_counts_are_clamped() {
        assert_eq!(Parallelism::new(100_000).threads(), MAX_THREADS);
        assert_eq!(
            Parallelism::sequential().with_threads(usize::MAX).threads(),
            MAX_THREADS
        );
        assert_eq!(Parallelism::new(MAX_THREADS).threads(), MAX_THREADS);
    }

    #[test]
    fn tile_clamped_to_one() {
        assert_eq!(Parallelism::sequential().with_tile(0).tile(), 1);
        assert_eq!(Parallelism::sequential().with_tile(17).tile(), 17);
    }

    #[test]
    fn builders_compose() {
        let p = Parallelism::new(3).with_tile(8).with_threads(2);
        assert_eq!((p.threads(), p.tile()), (2, 8));
    }
}
