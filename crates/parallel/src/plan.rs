//! Serializable tile plans: the pairwise computation as a first-class
//! object.
//!
//! [`TileScheduler`](crate::TileScheduler) answers "what are the tiles?"
//! as an iterator; a [`TilePlan`] makes the *assignment* itself a value:
//! a pure `(n, tile)` pair under which every tile of the all-pairs upper
//! triangle has a **stable integer id** (its index in row-major block
//! order — exactly the order the scheduler emits). Because the plan is
//! two integers, it serializes trivially (the wire carries `(n, tile)`
//! and lists of tile ids), and any two processes holding equal plans
//! agree on every tile's geometry without exchanging geometry.
//!
//! The plan is the unit of *distribution*: [`TilePlan::shard`] cuts the
//! id space into contiguous ranges balanced by pair count, one per
//! worker (local thread or remote server); executors return one
//! [`TileSegment`] per tile (the tile's pair estimates in row-major,
//! `j > i` order), and a gatherer scatters segments back into the full
//! matrix by id. Tiles partition the pair set exactly (proptested), so
//! gathering needs no reconciliation.

use crate::tile::{Tile, TileScheduler, Tiles};
use std::ops::Range;

/// A pure, serializable description of one all-pairs tiling: matrix side
/// `n`, tile side `tile`, and the induced id ↔ tile mapping.
///
/// Two plans are interchangeable iff they are equal; everything else
/// (tile geometry, ids, pair counts) is derived deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilePlan {
    n: usize,
    tile: usize,
}

impl TilePlan {
    /// Plan an `n × n` all-pairs computation with tiles of side `tile`
    /// (clamped ≥ 1; edge tiles are smaller when `tile` ∤ `n`).
    #[must_use]
    pub fn new(n: usize, tile: usize) -> Self {
        Self {
            n,
            tile: tile.max(1),
        }
    }

    /// Matrix side length.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tile side length.
    #[must_use]
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Number of blocks along one axis.
    #[must_use]
    pub fn blocks_per_axis(&self) -> usize {
        self.n.div_ceil(self.tile)
    }

    /// Number of tiles in the plan (`b·(b+1)/2` for `b` blocks).
    ///
    /// Computed in 128-bit arithmetic and **saturated** at `usize::MAX`
    /// for plans too large to enumerate — a wire-supplied hostile `n`
    /// must never overflow into a small, wrong count. Use
    /// [`TilePlan::checked_tile_count`] to detect saturation.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.checked_tile_count().unwrap_or(usize::MAX)
    }

    /// [`TilePlan::tile_count`] as `None` when the count exceeds
    /// `usize` — the reject-with-`ERR_PLAN` signal for oversized plans.
    #[must_use]
    pub fn checked_tile_count(&self) -> Option<usize> {
        let b = self.blocks_per_axis() as u128;
        usize::try_from(b * (b + 1) / 2).ok()
    }

    /// Total `(i, j)`, `i < j` pairs the plan covers.
    ///
    /// Computed in 128-bit arithmetic and **saturated** at `usize::MAX`
    /// for adversarial `n` (`n·(n−1)/2` overflows `usize` long before
    /// `n` does). Use [`TilePlan::checked_pair_count`] to detect
    /// saturation.
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.checked_pair_count().unwrap_or(usize::MAX)
    }

    /// [`TilePlan::pair_count`] as `None` when the count exceeds
    /// `usize` — the reject-with-`ERR_PLAN` signal for oversized plans.
    #[must_use]
    pub fn checked_pair_count(&self) -> Option<usize> {
        let n = self.n as u128;
        usize::try_from(n * n.saturating_sub(1) / 2).ok()
    }

    /// Whether every derived quantity (tile ids, pair counts, the `n²`
    /// gather matrix) fits `usize` — false for hostile wire-supplied
    /// plans, which callers reject with `ERR_PLAN` instead of executing.
    #[must_use]
    pub fn is_enumerable(&self) -> bool {
        let n = self.n as u128;
        self.checked_tile_count().is_some()
            && self.checked_pair_count().is_some()
            && usize::try_from(n * n).is_ok()
    }

    /// First tile id of block row `row_block` (ids are row-major over
    /// the upper-triangle blocks: block row `r` owns `b − r` tiles).
    /// 128-bit internally: `row_block · b` overflows `usize` for
    /// adversarial plans before any range guard sees the product.
    fn row_offset(&self, row_block: usize) -> usize {
        let b = self.blocks_per_axis() as u128;
        let r = row_block as u128;
        usize::try_from(r * b - r * r.saturating_sub(1) / 2).unwrap_or(usize::MAX)
    }

    /// The `(row_block, col_block)` a tile id names, if in range.
    #[must_use]
    pub fn block_of(&self, id: usize) -> Option<(usize, usize)> {
        if id >= self.tile_count() {
            return None;
        }
        let b = self.blocks_per_axis();
        // Binary search the block row: the largest r with offset(r) ≤ id.
        let (mut lo, mut hi) = (0usize, b - 1);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.row_offset(mid) <= id {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        Some((lo, lo + (id - self.row_offset(lo))))
    }

    /// The stable id of block `(row_block, col_block)`, if the block is
    /// in range and on/above the diagonal.
    #[must_use]
    pub fn id_of(&self, row_block: usize, col_block: usize) -> Option<usize> {
        let b = self.blocks_per_axis();
        if row_block > col_block || col_block >= b {
            return None;
        }
        Some(self.row_offset(row_block) + (col_block - row_block))
    }

    /// The tile a stable id names, if in range.
    #[must_use]
    pub fn tile_at(&self, id: usize) -> Option<Tile> {
        let (row_block, col_block) = self.block_of(id)?;
        let (n, tile) = (self.n, self.tile);
        Some(Tile {
            row_start: row_block * tile,
            row_end: (row_block * tile + tile).min(n),
            col_start: col_block * tile,
            col_end: (col_block * tile + tile).min(n),
        })
    }

    /// Iterate `(id, tile)` in id order (row-major block order — the
    /// exact order [`TileScheduler::tiles`] emits).
    pub fn tiles(&self) -> impl Iterator<Item = (usize, Tile)> + '_ {
        self.scheduler().tiles().enumerate()
    }

    /// The equivalent iterator-style scheduler.
    #[must_use]
    pub fn scheduler(&self) -> TileScheduler {
        TileScheduler::new(self.n, self.tile)
    }

    /// Per-tile segment offsets into one flat buffer covering every
    /// upper-triangle pair: `offsets[id]..offsets[id + 1]` is tile
    /// `id`'s segment; `offsets[tile_count]` is the total pair count.
    #[must_use]
    pub fn segment_offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.tile_count() + 1);
        let mut total = 0usize;
        for (_, t) in self.tiles() {
            offsets.push(total);
            total += t.pair_count();
        }
        offsets.push(total);
        offsets
    }

    /// Cut the tile-id space into exactly `shards` contiguous ranges
    /// (some possibly empty) balanced by pair count, covering
    /// `0..tile_count` exactly once in order. Deterministic: depends
    /// only on `(n, tile, shards)`, so a coordinator and its workers —
    /// or two runs of the same coordinator — always agree.
    ///
    /// Balancing is by *pair* count, not tile count: diagonal tiles hold
    /// roughly half the pairs of off-diagonal ones, so tile-count
    /// balancing would skew.
    #[must_use]
    pub fn shard(&self, shards: usize) -> Vec<Range<usize>> {
        let shards = shards.max(1);
        let total = self.pair_count();
        let tile_count = self.tile_count();
        let mut ranges = Vec::with_capacity(shards);
        if shards == 1 || total == 0 {
            ranges.push(0..tile_count);
        } else {
            let target = total.div_ceil(shards);
            let mut acc = 0usize;
            let mut start = 0usize;
            for (id, t) in self.tiles() {
                acc += t.pair_count();
                if acc >= target * (ranges.len() + 1)
                    && id + 1 < tile_count
                    && ranges.len() + 1 < shards
                {
                    ranges.push(start..id + 1);
                    start = id + 1;
                }
            }
            ranges.push(start..tile_count);
        }
        while ranges.len() < shards {
            ranges.push(tile_count..tile_count);
        }
        ranges
    }

    /// The ids of every tile whose row **or** column span intersects
    /// `rows` — the exact re-execution frontier after rows
    /// `rows.start..rows.end` were appended to a store whose first
    /// `rows.start` rows already have a gathered matrix. The complement
    /// (tiles entirely inside `0..rows.start`) holds only pairs already
    /// present in the old matrix, so incremental growth re-executes
    /// `O(new·n)` pairs (rounded up to tile granularity) instead of all
    /// `n·(n−1)/2`.
    ///
    /// Ascending id order. An empty or out-of-range `rows` yields the
    /// tiles it actually intersects (possibly none).
    #[must_use]
    pub fn tiles_touching_rows(&self, rows: Range<usize>) -> Vec<usize> {
        let mut ids = Vec::new();
        if rows.start >= rows.end || rows.start >= self.n {
            return ids;
        }
        for (id, t) in self.tiles() {
            let row_hit = t.row_start < rows.end && t.row_end > rows.start;
            let col_hit = t.col_start < rows.end && t.col_end > rows.start;
            if row_hit || col_hit {
                ids.push(id);
            }
        }
        ids
    }
}

impl IntoIterator for TilePlan {
    type Item = Tile;
    type IntoIter = Tiles;

    fn into_iter(self) -> Tiles {
        self.scheduler().tiles()
    }
}

/// One executed tile's estimates: the pairs `(i, j)` with `i` in the
/// tile's rows, `j` in its cols, `i < j`, in row-major order — exactly
/// the order the local kernel walks them. Keyed by the plan's stable
/// tile id so segments can arrive (and scatter) in any order.
#[derive(Debug, Clone, PartialEq)]
pub struct TileSegment {
    /// The tile's stable id under the governing [`TilePlan`].
    pub tile_id: u64,
    /// The tile's pair estimates, length [`Tile::pair_count`].
    pub values: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_row_major_and_invertible() {
        let plan = TilePlan::new(17, 4); // b = 5, 15 tiles
        assert_eq!(plan.blocks_per_axis(), 5);
        assert_eq!(plan.tile_count(), 15);
        for (id, tile) in plan.tiles() {
            let (r, c) = plan.block_of(id).expect("in range");
            assert_eq!(plan.id_of(r, c), Some(id));
            assert_eq!(plan.tile_at(id), Some(tile));
        }
        assert_eq!(plan.block_of(15), None);
        assert_eq!(plan.tile_at(15), None);
        assert_eq!(plan.id_of(2, 1), None, "below the diagonal");
        assert_eq!(plan.id_of(0, 5), None, "column out of range");
    }

    #[test]
    fn plan_matches_scheduler_exactly() {
        for (n, tile) in [(0usize, 3usize), (1, 3), (7, 3), (16, 4), (17, 4)] {
            let plan = TilePlan::new(n, tile);
            let from_plan: Vec<Tile> = plan.tiles().map(|(_, t)| t).collect();
            let from_scheduler: Vec<Tile> = TileScheduler::new(n, tile).tiles().collect();
            assert_eq!(from_plan, from_scheduler, "n = {n}, tile = {tile}");
            assert_eq!(from_plan.len(), plan.tile_count());
        }
    }

    #[test]
    fn segment_offsets_are_pair_count_prefix_sums() {
        let plan = TilePlan::new(10, 3);
        let offsets = plan.segment_offsets();
        assert_eq!(offsets.len(), plan.tile_count() + 1);
        assert_eq!(*offsets.last().unwrap(), plan.pair_count());
        for (id, t) in plan.tiles() {
            assert_eq!(offsets[id + 1] - offsets[id], t.pair_count());
        }
    }

    /// Shards cover the id space exactly once, in order, and every pair
    /// is owned by exactly one shard.
    fn assert_shard_cover(n: usize, tile: usize, shards: usize) {
        let plan = TilePlan::new(n, tile);
        let ranges = plan.shard(shards);
        assert_eq!(ranges.len(), shards.max(1));
        let mut next = 0usize;
        let mut pairs = HashSet::new();
        for range in &ranges {
            assert_eq!(range.start, next.min(plan.tile_count()));
            assert!(range.start <= range.end);
            next = range.end.max(next);
            for id in range.clone() {
                let t = plan.tile_at(id).expect("in range");
                for i in t.rows() {
                    for j in t.cols() {
                        if j > i {
                            assert!(pairs.insert((i, j)), "pair ({i},{j}) in two shards");
                        }
                    }
                }
            }
        }
        assert_eq!(next, plan.tile_count(), "ids not fully covered");
        assert_eq!(pairs.len(), plan.pair_count(), "missing pairs");
    }

    #[test]
    fn sharding_covers_exactly_on_awkward_shapes() {
        for n in [0usize, 1, 2, 5, 16, 17] {
            for tile in [1usize, 3, 16] {
                for shards in [1usize, 2, 3, 7] {
                    assert_shard_cover(n, tile, shards);
                }
            }
        }
    }

    #[test]
    fn sharding_balances_by_pair_count() {
        let plan = TilePlan::new(64, 4);
        let shards = 4;
        let ranges = plan.shard(shards);
        let loads: Vec<usize> = ranges
            .iter()
            .map(|r| {
                r.clone()
                    .map(|id| plan.tile_at(id).unwrap().pair_count())
                    .sum()
            })
            .collect();
        let target = plan.pair_count().div_ceil(shards);
        for (s, load) in loads.iter().enumerate() {
            // Greedy cuts at tile edges: a shard overshoots by at most
            // one tile's pairs.
            assert!(*load <= target + 16 * 16, "shard {s} holds {load}");
        }
        assert_eq!(loads.iter().sum::<usize>(), plan.pair_count());
    }

    #[test]
    fn more_shards_than_tiles_pads_with_empty_ranges() {
        let plan = TilePlan::new(4, 4); // one tile
        let ranges = plan.shard(5);
        assert_eq!(ranges.len(), 5);
        assert_eq!(ranges[0], 0..1);
        assert!(ranges[1..].iter().all(std::ops::Range::is_empty));
    }

    /// The frontier ids after growing from `old` to `n` rows, checked
    /// pair-by-pair: frontier tiles hold every pair touching a new row,
    /// and the complement holds only old×old pairs.
    fn assert_frontier_exact(n: usize, tile: usize, old: usize) {
        let plan = TilePlan::new(n, tile);
        let frontier = plan.tiles_touching_rows(old..n);
        let set: HashSet<usize> = frontier.iter().copied().collect();
        assert_eq!(set.len(), frontier.len(), "frontier ids repeat");
        assert!(
            frontier.windows(2).all(|w| w[0] < w[1]),
            "frontier not ascending"
        );
        for (id, t) in plan.tiles() {
            for i in t.rows() {
                for j in t.cols() {
                    if j <= i {
                        continue;
                    }
                    if j >= old {
                        assert!(set.contains(&id), "new pair ({i},{j}) outside the frontier");
                    }
                }
            }
            if !set.contains(&id) {
                assert!(
                    t.row_end <= old && t.col_end <= old,
                    "seeded tile {id} touches rows ≥ {old}"
                );
            }
        }
    }

    #[test]
    fn frontier_covers_new_pairs_exactly() {
        for n in [2usize, 5, 16, 17, 33] {
            for tile in [1usize, 3, 8, 64] {
                for old in 0..=n {
                    assert_frontier_exact(n, tile, old);
                }
            }
        }
        // Degenerate ranges.
        let plan = TilePlan::new(12, 4);
        assert!(plan.tiles_touching_rows(5..5).is_empty());
        assert!(plan.tiles_touching_rows(12..20).is_empty());
        assert_eq!(
            plan.tiles_touching_rows(0..12).len(),
            plan.tile_count(),
            "growing from nothing touches every tile"
        );
    }

    #[test]
    fn hostile_plan_sizes_saturate_instead_of_overflowing() {
        // n·(n−1)/2 and row_block·b overflow usize for these; the plan
        // must saturate and report non-enumerability, never wrap.
        for (n, tile) in [
            (usize::MAX, 1usize),
            (usize::MAX, 64),
            (1usize << 40, 1),
            ((1usize << 33) + 3, 1),
        ] {
            let plan = TilePlan::new(n, tile);
            assert_eq!(plan.pair_count(), usize::MAX, "n = {n}");
            assert_eq!(plan.checked_pair_count(), None, "n = {n}");
            assert!(!plan.is_enumerable(), "n = {n}");
            // Derived id math must not panic either.
            let _ = plan.tile_count();
            let _ = plan.block_of(usize::MAX - 1);
        }
        // Boundary: the largest enumerable sides stay exact.
        let fine = TilePlan::new(1 << 16, 64);
        let n = 1usize << 16;
        assert_eq!(fine.pair_count(), n * (n - 1) / 2);
        assert_eq!(fine.checked_pair_count(), Some(n * (n - 1) / 2));
        assert!(fine.is_enumerable());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn any_plan_shards_into_an_exact_partition(
            n in 0usize..48,
            tile in 1usize..12,
            shards in 1usize..9,
        ) {
            assert_shard_cover(n, tile, shards);
        }

        #[test]
        fn any_frontier_is_exact(n in 2usize..40, tile in 1usize..10, old in 0usize..40) {
            assert_frontier_exact(n, tile, old.min(n));
        }

        #[test]
        fn id_inversion_holds_for_any_plan(n in 1usize..64, tile in 1usize..12) {
            let plan = TilePlan::new(n, tile);
            for id in 0..plan.tile_count() {
                let (r, c) = plan.block_of(id).expect("in range");
                prop_assert!(r <= c);
                prop_assert_eq!(plan.id_of(r, c), Some(id));
            }
            prop_assert!(plan.block_of(plan.tile_count()).is_none());
        }
    }
}
