//! Cache-blocked tiling of the all-pairs upper triangle.
//!
//! The all-pairs distance matrix is symmetric with a zero diagonal, so
//! the unit of work is the *unordered pair set* `{(i, j) : i < j}`.
//! [`TileScheduler`] partitions that set into `(row_block, col_block)`
//! tiles of a configurable side length: exactly the blocks a cache-aware
//! kernel walks (both sketch blocks stay resident while the tile's
//! `tile²` pair estimates are produced), and exactly the work items a
//! future cross-worker sharding layer would distribute, because the
//! tiles partition the pair set — every pair lands in precisely one
//! tile.
//!
//! Only blocks on or above the diagonal are emitted (`row_block ≤
//! col_block`); within a diagonal tile the kernel still skips `j ≤ i`.

use std::ops::Range;

/// One block of the pairwise matrix: half-open row and column ranges.
/// The tile owns the pairs `(i, j)` with `i` in rows, `j` in cols, and
/// `i < j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// First row index (inclusive).
    pub row_start: usize,
    /// Past-the-end row index.
    pub row_end: usize,
    /// First column index (inclusive).
    pub col_start: usize,
    /// Past-the-end column index.
    pub col_end: usize,
}

impl Tile {
    /// The row index range.
    #[must_use]
    pub fn rows(&self) -> Range<usize> {
        self.row_start..self.row_end
    }

    /// The column index range.
    #[must_use]
    pub fn cols(&self) -> Range<usize> {
        self.col_start..self.col_end
    }

    /// Whether this tile straddles the diagonal (its kernel must skip
    /// `j ≤ i`); off-diagonal tiles contain only `i < j` pairs.
    #[must_use]
    pub fn is_diagonal(&self) -> bool {
        self.row_start == self.col_start
    }

    /// Number of `(i, j)` pairs with `i < j` owned by this tile.
    #[must_use]
    pub fn pair_count(&self) -> usize {
        let rows = self.row_end - self.row_start;
        let cols = self.col_end - self.col_start;
        if self.is_diagonal() {
            // Upper-triangular part of a square block.
            rows * rows.saturating_sub(1) / 2
        } else {
            rows * cols
        }
    }
}

/// Produces the upper-triangle tiles of an `n × n` pairwise matrix in
/// deterministic row-major block order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileScheduler {
    n: usize,
    tile: usize,
}

impl TileScheduler {
    /// Tile an `n × n` matrix into blocks of side `tile` (clamped ≥ 1;
    /// edge blocks are smaller when `tile` does not divide `n`).
    #[must_use]
    pub fn new(n: usize, tile: usize) -> Self {
        Self {
            n,
            tile: tile.max(1),
        }
    }

    /// Matrix side length.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tile side length.
    #[must_use]
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Number of blocks along one axis.
    #[must_use]
    pub fn blocks_per_axis(&self) -> usize {
        self.n.div_ceil(self.tile)
    }

    /// Total number of tiles emitted (`b·(b+1)/2` for `b` blocks).
    #[must_use]
    pub fn tile_count(&self) -> usize {
        let b = self.blocks_per_axis();
        b * (b + 1) / 2
    }

    /// Iterate the tiles in row-major block order.
    #[must_use]
    pub fn tiles(&self) -> Tiles {
        Tiles {
            scheduler: *self,
            row_block: 0,
            col_block: 0,
        }
    }
}

impl IntoIterator for TileScheduler {
    type Item = Tile;
    type IntoIter = Tiles;

    fn into_iter(self) -> Tiles {
        self.tiles()
    }
}

/// Iterator over a [`TileScheduler`]'s tiles.
#[derive(Debug, Clone)]
pub struct Tiles {
    scheduler: TileScheduler,
    row_block: usize,
    col_block: usize,
}

impl Iterator for Tiles {
    type Item = Tile;

    fn next(&mut self) -> Option<Tile> {
        let TileScheduler { n, tile } = self.scheduler;
        let row_start = self.row_block * tile;
        if row_start >= n {
            return None;
        }
        let col_start = self.col_block * tile;
        let out = Tile {
            row_start,
            row_end: (row_start + tile).min(n),
            col_start,
            col_end: (col_start + tile).min(n),
        };
        // Advance along the block row, then to the next diagonal start.
        self.col_block += 1;
        if self.col_block * tile >= n {
            self.row_block += 1;
            self.col_block = self.row_block;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    /// Every `i < j` pair appears in exactly one tile, and pair_count
    /// agrees with an explicit enumeration.
    fn assert_exact_cover(n: usize, tile: usize) {
        let scheduler = TileScheduler::new(n, tile);
        let mut seen = HashSet::new();
        let mut tiles = 0;
        for t in scheduler.tiles() {
            tiles += 1;
            let mut pairs_here = 0;
            for i in t.rows() {
                for j in t.cols() {
                    if j <= i {
                        continue;
                    }
                    pairs_here += 1;
                    assert!(seen.insert((i, j)), "pair ({i},{j}) covered twice");
                }
            }
            assert_eq!(pairs_here, t.pair_count(), "{t:?}");
        }
        assert_eq!(tiles, scheduler.tile_count(), "n = {n}, tile = {tile}");
        assert_eq!(seen.len(), n * n.saturating_sub(1) / 2, "missing pairs");
    }

    #[test]
    fn exact_cover_on_awkward_shapes() {
        for n in [0usize, 1, 2, 3, 7, 16, 17] {
            for tile in [1usize, 2, 3, 5, 16, 64] {
                assert_exact_cover(n, tile);
            }
        }
    }

    #[test]
    fn tile_zero_is_clamped() {
        let s = TileScheduler::new(8, 0);
        assert_eq!(s.tile(), 1);
        assert_exact_cover(8, 0);
    }

    #[test]
    fn empty_matrix_yields_no_tiles() {
        assert_eq!(TileScheduler::new(0, 4).tiles().count(), 0);
        assert_eq!(TileScheduler::new(0, 4).tile_count(), 0);
    }

    #[test]
    fn single_element_matrix_has_no_pairs() {
        let tiles: Vec<Tile> = TileScheduler::new(1, 4).tiles().collect();
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].pair_count(), 0);
        assert!(tiles[0].is_diagonal());
    }

    #[test]
    fn diagonal_detection() {
        let tiles: Vec<Tile> = TileScheduler::new(8, 4).tiles().collect();
        assert_eq!(tiles.len(), 3);
        assert!(tiles[0].is_diagonal());
        assert!(!tiles[1].is_diagonal());
        assert!(tiles[2].is_diagonal());
        assert_eq!(tiles[0].pair_count(), 6); // C(4,2)
        assert_eq!(tiles[1].pair_count(), 16); // 4 × 4
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn exact_cover_for_any_shape(n in 0usize..40, tile in 1usize..12) {
            assert_exact_cover(n, tile);
        }
    }
}
