//! Scoped fork/join primitives: the hand-rolled thread pool.
//!
//! Every primitive here is a *scoped* pool: workers are spawned inside
//! `std::thread::scope`, borrow their inputs (and disjoint `&mut` output
//! chunks) directly, and are all joined before the call returns. There
//! is no `unsafe`, no channel plumbing, and no `'static` bound on the
//! work — the borrow checker proves race freedom from the chunk
//! decomposition itself.
//!
//! Three distribution strategies cover the workspace's workloads:
//!
//! * **Static chunking** ([`par_chunks_mut`]) — contiguous, balanced
//!   chunks of an output slice, one per worker. Right for uniform-cost
//!   items (rows of a sketch batch).
//! * **Caller-weighted chunking** ([`par_split_mut`]) — contiguous
//!   parts at caller-chosen boundaries, so unevenly-costed elements can
//!   be balanced by weight (pairwise tile groups balanced by pair
//!   count).
//! * **Dynamic task queue** ([`par_map`]) — workers claim task indices
//!   from an atomic counter. Right when per-item cost is unpredictable
//!   (per-query k-NN rankings, Monte-Carlo reps).
//!
//! Error determinism: when tasks can fail, the error returned is the one
//! at the **lowest task index** among all failures — exactly the error a
//! sequential `for` loop would have hit first — independent of thread
//! scheduling. To keep that guarantee, a failing run completes the
//! remaining tasks instead of aborting early; the failure path is not a
//! hot path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `f(worker_index)` on `workers` scoped threads; the calling thread
/// participates as worker 0, so `workers == 1` never spawns.
pub fn scope_workers<F: Fn(usize) + Sync>(workers: usize, f: F) {
    if workers <= 1 {
        f(0);
        return;
    }
    std::thread::scope(|scope| {
        let f = &f;
        for w in 1..workers {
            scope.spawn(move || f(w));
        }
        f(0);
    });
}

/// Split `out` into at most `threads` balanced contiguous chunks and run
/// `f(chunk_offset, chunk)` on each, in parallel. Chunk boundaries
/// depend only on `out.len()` and the worker count, never on timing.
///
/// # Errors
/// The error from the lowest-offset failing chunk (which, because chunks
/// are contiguous and ascending, is the chunk containing the lowest
/// failing element), deterministically.
pub fn par_chunks_mut<T, E, F>(out: &mut [T], threads: usize, f: F) -> Result<(), E>
where
    T: Send,
    E: Send,
    F: Fn(usize, &mut [T]) -> Result<(), E> + Sync,
{
    let n = out.len();
    let workers = threads.min(n).max(1);
    if workers <= 1 {
        return f(0, out);
    }
    // Balanced partition: the first `n % workers` chunks take one extra.
    let (base, extra) = (n / workers, n % workers);
    let failure: Mutex<Option<(usize, E)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        let (f, failure) = (&f, &failure);
        let mut rest = out;
        let mut offset = 0;
        let mut first_chunk = None;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            let (chunk, tail) = rest.split_at_mut(len);
            rest = tail;
            let chunk_offset = offset;
            offset += len;
            if w == 0 {
                // The calling thread participates as a worker; spawning
                // only `workers − 1` threads keeps the host at exactly
                // `threads` busy workers.
                first_chunk = Some((chunk_offset, chunk));
                continue;
            }
            scope.spawn(move || {
                if let Err(e) = f(chunk_offset, chunk) {
                    record_lowest(failure, chunk_offset, e);
                }
            });
        }
        let (chunk_offset, chunk) = first_chunk.expect("workers >= 1");
        if let Err(e) = f(chunk_offset, chunk) {
            record_lowest(failure, chunk_offset, e);
        }
    });
    finish(failure)
}

/// Split `out` at the given ascending interior `boundaries` (each
/// `≤ out.len()`) into `boundaries.len() + 1` contiguous parts and run
/// `f(part_index, part_offset, part)` on every part in parallel, the
/// first part on the calling thread. The caller chooses the boundaries,
/// so unevenly-sized parts can balance unevenly-costed elements (e.g.
/// pairwise tiles grouped by pair count).
///
/// # Panics
/// If `boundaries` is not ascending or a boundary exceeds `out.len()`.
pub fn par_split_mut<T, F>(out: &mut [T], boundaries: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    if boundaries.is_empty() {
        f(0, 0, out);
        return;
    }
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = out;
        let mut offset = 0;
        let mut first_part = None;
        for part in 0..=boundaries.len() {
            let end = boundaries.get(part).copied().unwrap_or(offset + rest.len());
            assert!(end >= offset, "boundaries must be ascending");
            let (chunk, tail) = rest.split_at_mut(end - offset);
            rest = tail;
            let part_offset = offset;
            offset = end;
            if part == 0 {
                first_part = Some((part_offset, chunk));
                continue;
            }
            scope.spawn(move || f(part, part_offset, chunk));
        }
        let (part_offset, chunk) = first_part.expect("at least one part");
        f(0, part_offset, chunk);
    });
}

/// Map `f` over `items` on up to `threads` workers with dynamic task
/// claiming, returning results in input order regardless of which worker
/// computed what.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));
    scope_workers(threads.min(n), |_| {
        let mut mine: Vec<(usize, U)> = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            mine.push((i, f(i, &items[i])));
        }
        // Heal rather than unwrap: entries are appended whole, so a
        // poisoned mutex still holds consistent pairs, and the scope
        // re-raises the original worker panic anyway — unwrapping here
        // would only replace its message with a less useful one.
        collected
            .lock()
            .unwrap_or_else(|poison| {
                collected.clear_poison();
                poison.into_inner()
            })
            .extend(mine);
    });
    let mut pairs = collected.into_inner().expect("worker panicked");
    debug_assert_eq!(pairs.len(), n, "every task claimed exactly once");
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, u)| u).collect()
}

/// Keep the failure with the lowest task index.
fn record_lowest<E>(failure: &Mutex<Option<(usize, E)>>, index: usize, e: E) {
    // Heal on poison: the slot is replaced atomically under the lock
    // (no partial writes), and losing it entirely would hide the first
    // failure behind a poisoning panic.
    let mut slot = failure.lock().unwrap_or_else(|poison| {
        failure.clear_poison();
        poison.into_inner()
    });
    if slot.as_ref().is_none_or(|&(prev, _)| index < prev) {
        *slot = Some((index, e));
    }
}

fn finish<E>(failure: Mutex<Option<(usize, E)>>) -> Result<(), E> {
    match failure.into_inner().expect("worker panicked") {
        Some((_, e)) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_workers_runs_every_worker_once() {
        for workers in [1usize, 2, 3, 8] {
            let hits = AtomicU64::new(0);
            scope_workers(workers, |w| {
                hits.fetch_add(1 << (8 * w.min(7)), Ordering::Relaxed);
            });
            let h = hits.load(Ordering::Relaxed);
            for w in 0..workers.min(8) {
                assert_eq!((h >> (8 * w)) & 0xff, 1, "worker {w} of {workers}");
            }
        }
    }

    #[test]
    fn par_chunks_mut_covers_the_slice_exactly() {
        for (n, threads) in [(0usize, 4usize), (1, 4), (5, 2), (16, 4), (17, 4), (3, 8)] {
            let mut out = vec![usize::MAX; n];
            par_chunks_mut(&mut out, threads, |offset, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = offset + i;
                }
                Ok::<(), ()>(())
            })
            .unwrap();
            let expected: Vec<usize> = (0..n).collect();
            assert_eq!(out, expected, "n = {n}, threads = {threads}");
        }
    }

    #[test]
    fn par_chunks_mut_error_is_the_lowest_chunk() {
        for threads in [2usize, 3, 8] {
            let mut out = vec![0u8; 20];
            let got = par_chunks_mut(&mut out, threads, |offset, chunk| {
                // Every chunk past the first fails with its offset.
                if offset + chunk.len() > 5 {
                    Err(offset)
                } else {
                    Ok(())
                }
            });
            let expected = got.unwrap_err();
            // Rerunning is deterministic.
            let mut again = vec![0u8; 20];
            let got2 = par_chunks_mut(&mut again, threads, |offset, chunk| {
                if offset + chunk.len() > 5 {
                    Err(offset)
                } else {
                    Ok(())
                }
            });
            assert_eq!(got2.unwrap_err(), expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_split_mut_respects_boundaries() {
        // Parts: [0..3), [3..3), [3..7), [7..10).
        let mut out = vec![(0usize, 0usize); 10];
        par_split_mut(&mut out, &[3, 3, 7], |part, offset, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = (part, offset + i);
            }
        });
        let expected: Vec<(usize, usize)> = (0..10)
            .map(|i| {
                let part = match i {
                    0..=2 => 0,
                    3..=6 => 2,
                    _ => 3,
                };
                (part, i)
            })
            .collect();
        assert_eq!(out, expected);
        // No boundaries → one sequential part covering everything.
        let mut whole = vec![0usize; 4];
        par_split_mut(&mut whole, &[], |part, offset, chunk| {
            assert_eq!((part, offset, chunk.len()), (0, 0, 4));
            chunk.fill(7);
        });
        assert_eq!(whole, vec![7; 4]);
        // Empty slice, boundary at 0.
        let mut empty: Vec<u8> = Vec::new();
        par_split_mut(&mut empty, &[0], |_, _, chunk| assert!(chunk.is_empty()));
    }

    #[test]
    fn par_map_preserves_input_order() {
        for threads in [1usize, 2, 4, 9] {
            let items: Vec<u64> = (0..97).collect();
            let doubled = par_map(&items, threads, |i, &x| {
                assert_eq!(i as u64, x);
                x * 2
            });
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn par_map_matches_sequential_for_any_shape(
            n in 0usize..64,
            threads in 1usize..9,
        ) {
            let items: Vec<usize> = (0..n).collect();
            let seq: Vec<usize> = items.iter().map(|&x| x * x + 1).collect();
            let par = par_map(&items, threads, |_, &x| x * x + 1);
            prop_assert_eq!(seq, par);
        }

        #[test]
        fn par_chunks_mut_matches_sequential_fill(
            n in 0usize..64,
            threads in 1usize..9,
        ) {
            let mut out = vec![0usize; n];
            par_chunks_mut(&mut out, threads, |offset, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = (offset + i) * 3;
                }
                Ok::<(), ()>(())
            }).unwrap();
            let expected: Vec<usize> = (0..n).map(|i| i * 3).collect();
            prop_assert_eq!(out, expected);
        }
    }
}
