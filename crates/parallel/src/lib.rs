//! The parallel execution layer underneath the release API.
//!
//! The offline build image has no crates.io access, so this crate is a
//! hand-rolled, dependency-free substitute for the slice of rayon the
//! workspace needs: scoped fork/join over borrowed data, with *chunked*
//! (static, contiguous) and *task-queue* (dynamic, atomic-counter) work
//! distribution. Three design rules shape everything here:
//!
//! 1. **Determinism is non-negotiable.** Results must be bit-identical to
//!    the sequential reference for every thread count and tile size. All
//!    primitives therefore assign *what* is computed independently of
//!    *who* computes it: seeds derive from row indices, tile buffers
//!    scatter back in schedule order, and error selection picks the
//!    lowest task index, exactly what a sequential loop would hit first.
//! 2. **Scoped borrowing, no `unsafe`.** Workers are scoped threads
//!    (`std::thread::scope`) that borrow inputs and disjoint `&mut`
//!    output chunks obtained via `split_at_mut` — the compiler proves the
//!    absence of data races.
//! 3. **Graceful sequential fallback.** A [`Parallelism`] of one thread
//!    (or trivially small inputs) runs entirely on the calling thread, so
//!    single-core hosts and `DP_THREADS=1` CI lanes exercise the same
//!    code paths without spawning.
//!
//! [`TileScheduler`] decomposes the all-pairs distance matrix into
//! cache-blocked `(row_block, col_block)` tiles over the upper triangle.
//! A tile is both the unit of intra-process parallelism (workers take
//! contiguous tile groups balanced by pair count and write disjoint
//! segments of one flat result buffer) and the unit of *cross-worker
//! sharding*: [`TilePlan`] names every tile with a stable id under a
//! pure `(n, tile)` plan, [`TilePlan::shard`] cuts the id space into
//! pair-count-balanced contiguous ranges, and executors return
//! [`TileSegment`]s a gatherer concatenates without reconciliation,
//! because tiles partition the pair set exactly.

pub mod config;
pub mod plan;
pub mod pool;
pub mod tile;

pub use config::{KernelId, Parallelism, DEFAULT_TILE, MAX_THREADS};
pub use plan::{TilePlan, TileSegment};
pub use pool::{par_chunks_mut, par_map, par_split_mut, scope_workers};
pub use tile::{Tile, TileScheduler};
