//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the proptest API its unit tests
//! use: the `proptest!` macro with `name in strategy` bindings, integer
//! and float range strategies, `any::<T>()` for unsigned integers,
//! `collection::vec` with a fixed or ranged length, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! SplitMix64 stream seeded by the test's module path, so failures are
//! reproducible; there is no shrinking. Swap the workspace path entry for
//! the real crates.io proptest when network access is available — the
//! test sources compile against either.

use std::ops::Range;

/// Number of cases run per property when no config is given.
pub const DEFAULT_CASES: u32 = 64;

/// Deterministic generator driving the strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identity string (module path + test name).
    #[must_use]
    pub fn deterministic(identity: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in identity.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)` (`bound > 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at these case counts.
        self.next_u64() % bound
    }
}

/// A value generator (the shim's version of proptest's `Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// Types `any::<T>()` can generate.
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_lossless)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generate any value of `T` (uniform over the representation).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// A fixed or ranged collection length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy generating `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector with length drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min
                + if span > 0 {
                    rng.next_below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-property configuration (only `cases` is honored).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Mirror of `proptest::proptest!`: defines one `#[test]` per property,
/// running `cases` deterministic samples of each bound strategy.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg); $($rest)*);
    };
    (@with_config ($cfg:expr); $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Mirror of `prop_assert!` (panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirror of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirror of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The imports test modules glob in.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, SizeRange, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("shim::ranges");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let n = Strategy::sample(&(-5i32..-1), &mut rng);
            assert!((-5..-1).contains(&n));
        }
    }

    #[test]
    fn vec_sizes_respect_bounds() {
        let mut rng = TestRng::deterministic("shim::vec");
        for _ in 0..200 {
            let fixed = Strategy::sample(&collection::vec(0.0f64..1.0, 8), &mut rng);
            assert_eq!(fixed.len(), 8);
            let ranged = Strategy::sample(&collection::vec(0.0f64..1.0, 1..5), &mut rng);
            assert!((1..5).contains(&ranged.len()));
        }
    }

    #[test]
    fn determinism_per_identity() {
        let a: Vec<u64> = {
            let mut rng = TestRng::deterministic("same");
            (0..10).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::deterministic("same");
            (0..10).map(|_| rng.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut rng = TestRng::deterministic("different");
            (0..10).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn the_macro_binds_strategies(x in 0u64..100, v in collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(x < 100);
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn any_u128_spans_both_halves(x in any::<u128>()) {
            // Smoke: the value is at least constructed from two words.
            let _ = x;
        }
    }
}
