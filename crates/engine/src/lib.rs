//! # dp-engine — the persistent query layer over released sketches
//!
//! The paper's sketches exist to be *queried*: estimate `‖x − y‖²`
//! between any pair of released parties, rank neighbors, find close
//! pairs. The rest of the workspace produces and transports releases;
//! this crate is their long-lived home:
//!
//! * [`SketchStore`] — owns the shared [`dp_core::SketcherSpec`], one
//!   [`dp_core::wire::TagInterner`], and every ingested sketch in a
//!   flat `n × k` arena. Ingest accepts decoded
//!   [`dp_core::release::Release`] frames or raw `DPRL` bytes, and
//!   rejects incompatible sketches and duplicate party ids with typed
//!   [`EngineError`]s. All validation happens once, at ingest.
//! * [`QueryEngine`] — `pair`, `pairwise`, `knn`, `top_pairs` over the
//!   store, reusing the tiled `dp_parallel` kernel with its hoisted
//!   debias constants, plus an **incremental** all-pairs cache: after
//!   new rows arrive, the next query computes only the new pairs. The
//!   cold all-pairs pass runs the plan → execute → gather pipeline
//!   ([`QueryEngine::execute_tiles`] is the worker half a server
//!   exposes over protocol v3).
//! * [`Gather`] — assembles out-of-order executed [`dp_core::TileSegment`]s
//!   into the full matrix with typed [`GatherError`]s for
//!   missing/duplicate/misshapen tiles — what a sharding coordinator
//!   runs over worker answers.
//! * [`SharedEngine`] / [`EngineSnapshot`] — snapshot isolation for
//!   read-heavy serving: mutations serialize through one lock and
//!   publish immutable epoch-stamped snapshots; readers run `pair` /
//!   `pairwise` / `knn` / `top_pairs` against a snapshot with **zero
//!   locks** on the hot path (one atomic epoch load), concurrently
//!   with each other and with ingest, bit-identical to the locked
//!   surface by construction.
//!
//! One engine backs the library surface (`dp_stream`'s old free
//! functions are thin wrappers), the `dp-server` protocol-v3 service,
//! and the bench harness — per the repo's determinism contract, all
//! of them bit-identical to the naive per-pair reference.

pub mod engine;
pub mod error;
pub mod gather;
pub mod snapshot;
pub mod store;

pub use engine::{Neighbor, QueryEngine};
pub use error::EngineError;
pub use gather::{Gather, GatherError};
pub use snapshot::{EngineSnapshot, SharedEngine};
pub use store::SketchStore;

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::config::SketchConfig;
    use dp_core::release::Release;
    use dp_core::sketcher::{
        pairwise_sq_distances_reference, Construction, PrivateSketcher, SketcherSpec,
    };
    use dp_core::{NoisySketch, Parallelism};
    use dp_hashing::Seed;

    fn spec(d: usize) -> SketcherSpec {
        let config = SketchConfig::builder()
            .input_dim(d)
            .alpha(0.3)
            .beta(0.1)
            .epsilon(1.5)
            .build()
            .unwrap();
        SketcherSpec::new(Construction::SjltAuto, config, Seed::new(7))
    }

    fn releases(n: usize, d: usize) -> (SketcherSpec, Vec<Release>) {
        let spec = spec(d);
        let sk = spec.build().unwrap();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..d).map(|j| ((i * d + j) % 7) as f64 - 3.0).collect())
            .collect();
        let sketches = sk.sketch_batch(&rows, Seed::new(500)).unwrap();
        let releases = sketches
            .into_iter()
            .enumerate()
            .map(|(i, sketch)| Release {
                party_id: 100 + i as u64,
                sketch,
            })
            .collect();
        (spec, releases)
    }

    #[test]
    fn spec_store_pins_identity() {
        let (spec, rs) = releases(3, 48);
        let mut store = SketchStore::with_spec(spec.clone()).unwrap();
        assert_eq!(store.k(), Some(spec.build().unwrap().k()));
        assert!(store.tag().is_some());
        for r in &rs {
            store.ingest(r).unwrap();
        }
        assert_eq!(store.n(), 3);
        assert_eq!(store.spec(), Some(&spec));
        // A sketch under a different tag is refused with a typed error.
        let alien = Release {
            party_id: 999,
            sketch: NoisySketch::new(vec![0.0; rs[0].sketch.k()], "alien-tag", 0.5, 0.75),
        };
        assert!(matches!(
            store.ingest(&alien),
            Err(EngineError::Incompatible { party_id: 999, .. })
        ));
    }

    #[test]
    fn duplicate_party_ids_rejected_strictly_tolerated_positionally() {
        let (_, rs) = releases(2, 48);
        let mut store = SketchStore::adopting();
        store.ingest(&rs[0]).unwrap();
        assert_eq!(
            store.ingest(&rs[0]),
            Err(EngineError::DuplicateParty(rs[0].party_id))
        );
        // The lenient row path accepts it; the id still maps to row 0.
        let row = store.ingest_row(&rs[0]).unwrap();
        assert_eq!(row, 1);
        assert_eq!(store.row_of(rs[0].party_id), Some(0));
    }

    #[test]
    fn ingest_bytes_shares_one_interner() {
        let (spec, rs) = releases(5, 48);
        let mut store = SketchStore::with_spec(spec).unwrap();
        for r in &rs {
            store.ingest_bytes(&r.to_bytes().unwrap()).unwrap();
        }
        assert_eq!(store.n(), 5);
        // Regression: repeated ingest must never grow the interner.
        assert_eq!(store.interner_len(), 1);
        // Rows rebuild as sketches sharing the interned tag.
        let a = store.sketch_at(0);
        let b = store.sketch_at(4);
        assert!(std::sync::Arc::ptr_eq(&a.shared_tag(), &b.shared_tag()));
    }

    #[test]
    fn rejected_releases_leave_no_trace_in_the_interner() {
        let (spec, rs) = releases(2, 48);
        let mut store = SketchStore::with_spec(spec).unwrap();
        store.ingest_bytes(&rs[0].to_bytes().unwrap()).unwrap();
        assert_eq!(store.interner_len(), 1);
        // A flood of validly framed releases carrying novel tags is
        // rejected — and must not grow the store's interner.
        for i in 0..32u64 {
            let alien = Release {
                party_id: 1000 + i,
                sketch: NoisySketch::new(vec![0.0; 4], format!("alien-{i}"), 0.5, 0.75),
            };
            assert!(store.ingest(&alien).is_err());
            assert!(store.ingest_bytes(&alien.to_bytes().unwrap()).is_err());
            assert_eq!(store.interner_len(), 1, "tag alien-{i} was interned");
        }
        // The store still works after the flood.
        store.ingest(&rs[1]).unwrap();
        assert_eq!(store.n(), 2);
    }

    #[test]
    fn pairwise_all_matches_reference_bit_for_bit() {
        let (_, rs) = releases(9, 48);
        let sketches: Vec<NoisySketch> = rs.iter().map(|r| r.sketch.clone()).collect();
        let reference = pairwise_sq_distances_reference(&sketches).unwrap();
        for threads in [1usize, 3] {
            let mut engine = QueryEngine::new(SketchStore::adopting())
                .with_parallelism(Parallelism::new(threads).with_tile(4));
            for r in &rs {
                engine.ingest(r).unwrap();
            }
            let got = engine.pairwise_all();
            assert_eq!(got.n(), reference.n());
            for (a, b) in reference.as_flat().iter().zip(got.as_flat()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn incremental_growth_is_bit_identical_to_cold_start() {
        let (_, rs) = releases(11, 48);
        // Engine A: ingest everything, one cold all-pairs pass.
        let mut cold = QueryEngine::new(SketchStore::adopting());
        for r in &rs {
            cold.ingest(r).unwrap();
        }
        let cold_matrix = cold.pairwise_all();
        // Engine B: interleave ingest and queries (1 row, 4 rows, all).
        // Same kernel as the cold engine (which runs the env default),
        // so the comparison is within one kernel version.
        let mut warm = QueryEngine::new(SketchStore::adopting()).with_parallelism(
            Parallelism::new(2)
                .with_tile(3)
                .with_kernel(cold.parallelism().kernel()),
        );
        for r in &rs[..1] {
            warm.ingest(r).unwrap();
        }
        let _ = warm.pairwise_all();
        for r in &rs[1..4] {
            warm.ingest(r).unwrap();
        }
        let _ = warm.pairwise_all();
        for r in &rs[4..] {
            warm.ingest(r).unwrap();
        }
        let warm_matrix = warm.pairwise_all();
        assert_eq!(cold_matrix.n(), warm_matrix.n());
        for (a, b) in cold_matrix.as_flat().iter().zip(warm_matrix.as_flat()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pair_matches_matrix_and_estimator() {
        let (_, rs) = releases(6, 48);
        let mut engine = QueryEngine::new(SketchStore::adopting());
        for r in &rs {
            engine.ingest(r).unwrap();
        }
        let matrix = engine.pairwise_all();
        for i in 0..rs.len() {
            for j in 0..rs.len() {
                let via_pair = engine.pair(rs[i].party_id, rs[j].party_id).unwrap();
                assert_eq!(via_pair.to_bits(), matrix.at(i, j).to_bits(), "({i},{j})");
            }
        }
        // Single-sketcher batches: pair() equals the per-pair estimator
        // run under the engine's kernel.
        let direct = rs[0]
            .sketch
            .estimate_sq_distance_with(&rs[3].sketch, engine.parallelism().kernel())
            .unwrap();
        assert_eq!(
            engine
                .pair(rs[0].party_id, rs[3].party_id)
                .unwrap()
                .to_bits(),
            direct.to_bits()
        );
        assert!(matches!(
            engine.pair(rs[0].party_id, 424_242),
            Err(EngineError::UnknownParty(424_242))
        ));
    }

    #[test]
    fn subset_pairwise_matches_slicing() {
        let (_, rs) = releases(7, 48);
        let mut engine = QueryEngine::new(SketchStore::adopting());
        for r in &rs {
            engine.ingest(r).unwrap();
        }
        let ids: Vec<u64> = [6usize, 2, 4].iter().map(|&i| rs[i].party_id).collect();
        let sub = engine.pairwise(&ids).unwrap();
        assert_eq!(sub.n(), 3);
        let picked: Vec<NoisySketch> = [6usize, 2, 4]
            .iter()
            .map(|&i| rs[i].sketch.clone())
            .collect();
        // Per-pair reference under the engine's kernel: symmetric,
        // zero diagonal — exactly what the subset recompute produces.
        let kernel = engine.parallelism().kernel();
        for i in 0..picked.len() {
            for j in 0..picked.len() {
                let expected = if i == j {
                    0.0
                } else {
                    picked[i.min(j)]
                        .estimate_sq_distance_with(&picked[i.max(j)], kernel)
                        .unwrap()
                };
                assert_eq!(expected.to_bits(), sub.at(i, j).to_bits(), "({i},{j})");
            }
        }
        assert!(engine.pairwise(&[rs[0].party_id, 777]).is_err());
        assert_eq!(engine.pairwise(&[]).unwrap().n(), 0);
    }

    #[test]
    fn warm_subset_slices_the_memo_bit_identically() {
        let (_, rs) = releases(9, 48);
        let mut engine = QueryEngine::new(SketchStore::adopting())
            .with_parallelism(Parallelism::new(2).with_tile(3));
        for r in &rs {
            engine.ingest(r).unwrap();
        }
        assert!(engine.store().debias_uniform());
        let picks = [8usize, 0, 5, 3];
        let ids: Vec<u64> = picks.iter().map(|&i| rs[i].party_id).collect();
        // Cold: no memo yet, so this runs the tiled kernel.
        assert!(engine.cached_matrix().is_none());
        let cold = engine.pairwise(&ids).unwrap();
        // Warm the memo; the same subset must now slice it — and the
        // slice must be bitwise the cold answer, in the same order.
        let _ = engine.pairwise_all();
        assert!(engine.cached_matrix().is_some());
        let warm = engine.pairwise(&ids).unwrap();
        assert_eq!(cold.as_flat(), warm.as_flat());
        for (a, b) in cold.as_flat().iter().zip(warm.as_flat()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Orientation: a reversed subset is the transpose, also bitwise.
        let rev: Vec<u64> = ids.iter().rev().copied().collect();
        let warm_rev = engine.pairwise(&rev).unwrap();
        for i in 0..ids.len() {
            for j in 0..ids.len() {
                let m = ids.len() - 1;
                assert_eq!(warm.at(i, j).to_bits(), warm_rev.at(m - i, m - j).to_bits());
            }
        }
    }

    #[test]
    fn duplicate_subset_rows_bypass_the_memo() {
        let (_, rs) = releases(4, 48);
        let mut engine = QueryEngine::new(SketchStore::adopting());
        for r in &rs {
            engine.ingest(r).unwrap();
        }
        let _ = engine.pairwise_all();
        // A subset naming the same party twice: the cold kernel scores
        // the duplicated pair as raw 0.0 minus the debias constant —
        // NOT the matrix diagonal's exact 0.0 — so slicing the memo
        // here would be wrong. The gate must fall back to recompute.
        let a = rs[1].party_id;
        let dup = engine.pairwise(&[a, a]).unwrap();
        let expected = 0.0 - engine.store().debias_at(1);
        assert_eq!(dup.at(0, 1).to_bits(), expected.to_bits());
        assert_eq!(dup.at(1, 0).to_bits(), expected.to_bits());
        assert_eq!(dup.at(0, 0).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn nonuniform_debias_bypasses_the_memo() {
        // Two moments inside the kernel's 1e-12 tolerance but with
        // different bit patterns: the matrix debiases pair (0, 1) with
        // row 0's constant, while the reversed subset's recompute uses
        // row 1's — so the memo may only be sliced under a bitwise
        // uniform constant, which this store does not have.
        let m2 = 0.5;
        let mk = |id: u64, m2: f64| Release {
            party_id: id,
            sketch: NoisySketch::new(vec![1.0 + id as f64, 2.0], "t", m2, 0.75),
        };
        let mut engine = QueryEngine::new(SketchStore::adopting());
        engine.ingest(&mk(0, m2)).unwrap();
        engine.ingest(&mk(1, m2 + 1e-13)).unwrap();
        assert!(!engine.store().debias_uniform());
        let _ = engine.pairwise_all();
        let sub = engine.pairwise(&[1, 0]).unwrap();
        let picked = vec![mk(1, m2 + 1e-13).sketch, mk(0, m2).sketch];
        let reference = pairwise_sq_distances_reference(&picked).unwrap();
        for (a, b) in reference.as_flat().iter().zip(sub.as_flat()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // And the reversed-order answer really does differ from the
        // matrix slice here, proving the gate is load-bearing.
        let matrix = engine.pairwise_all();
        assert_ne!(sub.at(0, 1).to_bits(), matrix.at(1, 0).to_bits());
    }

    #[test]
    fn knn_matches_per_query_estimates() {
        let (_, rs) = releases(8, 48);
        let mut engine = QueryEngine::new(SketchStore::adopting());
        for r in &rs {
            engine.ingest(r).unwrap();
        }
        let got = engine.knn(rs[2].party_id, 3).unwrap();
        assert_eq!(got.len(), 3);
        // Estimates are the per-query estimator's (under the engine's
        // kernel), bit for bit.
        for n in &got {
            let j = rs.iter().position(|r| r.party_id == n.party_id).unwrap();
            let direct = rs[2]
                .sketch
                .estimate_sq_distance_with(&rs[j].sketch, engine.parallelism().kernel())
                .unwrap();
            assert_eq!(n.estimated_sq_distance.to_bits(), direct.to_bits());
        }
        // Ascending, excludes self, k capped by candidate count.
        assert!(got[0].estimated_sq_distance <= got[1].estimated_sq_distance);
        assert!(got.iter().all(|n| n.party_id != rs[2].party_id));
        assert_eq!(engine.knn(rs[0].party_id, 100).unwrap().len(), 7);
    }

    #[test]
    fn top_pairs_are_ascending_and_consistent() {
        let (_, rs) = releases(6, 48);
        let mut engine = QueryEngine::new(SketchStore::adopting());
        for r in &rs {
            engine.ingest(r).unwrap();
        }
        let top = engine.top_pairs(4);
        assert_eq!(top.len(), 4);
        for w in top.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
        // Every reported estimate equals the matrix entry.
        let matrix = engine.pairwise_all();
        for &(a, b, d) in &top {
            let i = rs.iter().position(|r| r.party_id == a).unwrap();
            let j = rs.iter().position(|r| r.party_id == b).unwrap();
            assert_eq!(d.to_bits(), matrix.at(i, j).to_bits());
        }
        // Asking for more pairs than exist returns them all.
        assert_eq!(engine.top_pairs(1000).len(), 15);
    }

    #[test]
    fn executed_tiles_match_the_all_pairs_matrix() {
        let (_, rs) = releases(10, 48);
        let mut engine = QueryEngine::new(SketchStore::adopting())
            .with_parallelism(Parallelism::new(2).with_tile(3));
        for r in &rs {
            engine.ingest(r).unwrap();
        }
        let matrix = engine.pairwise_all();
        let plan = engine.pairwise_plan();
        assert_eq!(plan.n(), 10);
        // Execute every tile explicitly (shuffled order) and gather.
        let mut ids: Vec<u64> = (0..plan.tile_count() as u64).collect();
        ids.reverse();
        let segments = engine
            .execute_tiles(plan.n(), plan.tile(), &ids)
            .expect("valid plan");
        let mut gather = Gather::new(plan);
        for s in &segments {
            gather.accept(s).unwrap();
        }
        let gathered = gather.finish().unwrap();
        for (a, b) in matrix.as_flat().iter().zip(gathered.as_flat()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Typed plan errors.
        assert!(matches!(
            engine.execute_tiles(9, plan.tile(), &[0]),
            Err(EngineError::PlanMismatch {
                store_rows: 10,
                plan_rows: 9,
            })
        ));
        assert!(matches!(
            engine.execute_tiles(10, plan.tile(), &[u64::MAX]),
            Err(EngineError::UnknownTile { .. })
        ));
    }

    #[test]
    fn batch_ingest_matches_per_row_with_one_generation_bump() {
        let (spec, rs) = releases(9, 48);
        let mut per_row = QueryEngine::new(SketchStore::with_spec(spec.clone()).unwrap());
        for r in &rs {
            per_row.ingest(r).unwrap();
        }
        let mut batched = QueryEngine::new(SketchStore::with_spec(spec).unwrap());
        let gen0 = batched.generation();
        let rows = batched.ingest_batch(&rs).unwrap();
        assert_eq!(rows, (0..9usize).collect::<Vec<_>>());
        assert_eq!(batched.generation(), gen0 + 1);
        let a = per_row.pairwise_all();
        let b = batched.pairwise_all();
        for (x, y) in a.as_flat().iter().zip(b.as_flat()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Fail-fast on a duplicate mid-batch: prefix stays, typed error.
        let mut extra = releases(2, 48).1;
        extra[0].party_id = 700;
        extra[1].party_id = 701;
        let mixed = vec![extra[0].clone(), rs[0].clone(), extra[1].clone()];
        let n_before = batched.store().n();
        assert!(matches!(
            batched.ingest_batch(&mixed),
            Err(EngineError::DuplicateParty(_))
        ));
        assert_eq!(batched.store().n(), n_before + 1);
    }

    #[test]
    fn bulk_sketch_and_ingest_rides_the_spec_kernel() {
        let (spec, _) = releases(0, 48);
        let raw: Vec<Vec<f64>> = (0..5)
            .map(|i| (0..48).map(|j| ((i * 48 + j) % 5) as f64 - 2.0).collect())
            .collect();
        let ids: Vec<u64> = (900..905).collect();
        let mut bulk = QueryEngine::new(SketchStore::with_spec(spec.clone()).unwrap());
        bulk.sketch_and_ingest_batch(&ids, &raw, Seed::new(77))
            .unwrap();
        // Bit-identical to the client-side sketch_batch + ingest path
        // under the same spec (kernel id included).
        let sk = spec.build().unwrap();
        let expect = sk.sketch_batch(&raw, Seed::new(77)).unwrap();
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(&bulk.store().sketch_at(i), want);
            assert_eq!(bulk.store().row_of(900 + i as u64), Some(i));
        }
        // Mismatched id/row counts and spec-less stores are typed errors.
        assert!(bulk
            .sketch_and_ingest_batch(&[1], &raw, Seed::new(1))
            .is_err());
        let mut specless = QueryEngine::new(SketchStore::adopting());
        assert!(specless
            .sketch_and_ingest_batch(&[1], &raw[..1], Seed::new(1))
            .is_err());
    }

    #[test]
    fn empty_store_answers_empty() {
        let mut engine = QueryEngine::new(SketchStore::adopting());
        assert_eq!(engine.pairwise_all().n(), 0);
        assert!(engine.top_pairs(3).is_empty());
        assert!(matches!(
            engine.knn(1, 3),
            Err(EngineError::UnknownParty(1))
        ));
    }

    #[test]
    fn moment_span_rejected_like_the_kernel() {
        let m2 = 0.5;
        let mk = |id: u64, m2: f64| Release {
            party_id: id,
            sketch: NoisySketch::new(vec![1.0, 2.0], "t", m2, 0.75),
        };
        let mut store = SketchStore::adopting();
        store.ingest(&mk(0, m2)).unwrap();
        store.ingest(&mk(1, m2 + 1.2e-12)).unwrap();
        // Passes the vs-anchor check but blows the batch span, exactly
        // like the tiled kernel's rejection.
        assert!(matches!(
            store.ingest(&mk(2, m2 - 1.2e-12)),
            Err(EngineError::Incompatible { party_id: 2, .. })
        ));
    }
}
