//! The persistent, incremental home of released sketches.
//!
//! A [`SketchStore`] owns the shared [`SketcherSpec`], one
//! [`TagInterner`], and every ingested sketch in a **flat arena**: one
//! contiguous `n × k` `Vec<f64>` of sketch coordinates plus per-row
//! metadata (party id, noise moments, hoisted debias constant). All
//! compatibility checking happens **once, at ingest** — the exact
//! vs-anchor + moment-span discipline of the tiled all-pairs kernel —
//! so the query layer ([`crate::QueryEngine`]) never re-validates and
//! never re-interns, which is what makes per-pair queries O(k) and
//! repeated ingest allocation-free for tags.

use crate::error::EngineError;
use dp_core::error::CoreError;
use dp_core::release::{parse_release_bytes, Release};
use dp_core::sketcher::{PrivateSketcher, SketcherSpec};
use dp_core::wire::{fnv1a64, TagInterner, CHECKSUM_LEN};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// Magic prefix of a binary store snapshot (`DPSS`).
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"DPSS";

/// Current snapshot layout version.
pub const SNAPSHOT_VERSION: u8 = 1;

/// A multiply-mix hasher for the party-id index (ids are `u64`s on the
/// hot point-query path, where SipHash costs more than the distance
/// computation it guards). Party ids are *public* protocol data, so the
/// usual DoS caveat of non-keyed hashing is an accepted trade: a peer
/// choosing adversarial ids can degrade its own store's lookups to
/// O(n), not corrupt them.
#[derive(Debug, Default, Clone)]
pub struct PartyIdHasher(u64);

impl Hasher for PartyIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fibonacci-style multiply-xorshift per 8-byte word (party ids
        // arrive as exactly one u64 write).
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.write_u64(u64::from_le_bytes(c.try_into().expect("8 bytes")));
        }
        for &b in chunks.remainder() {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, value: u64) {
        let mut x = self.0 ^ value;
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 32;
        self.0 = x;
    }
}

// dp-lint: allow(hash-collection) — lookup-only party-id index with a fixed
// deterministic hasher; it is never iterated, so no hash order reaches output.
type PartyIndex = HashMap<u64, usize, BuildHasherDefault<PartyIdHasher>>;

/// The relative tolerance under which two noise second moments are
/// considered the same calibration — identical to
/// [`dp_core::NoisySketch::check_compatible`] and the batch span check
/// of the tiled kernel, so a store accepts exactly the batches the
/// slice-based surface accepted.
fn moments_compatible(anchor: f64, other: f64) -> bool {
    (anchor - other).abs() <= 1e-12 * (1.0 + anchor.abs())
}

/// The identity every ingested sketch must match.
#[derive(Debug, Clone)]
struct Identity {
    tag: Arc<str>,
    k: usize,
}

/// A flat-arena store of released sketches sharing one transform.
///
/// Cloning a store copies the flat arenas (`O(n·k)`) but *shares* the
/// interned tag allocations — this is what snapshot publication
/// ([`crate::SharedEngine`]) does on every mutation, so the cost is
/// paid once per ingest, never per query.
#[derive(Debug, Default, Clone)]
pub struct SketchStore {
    /// The shared public parameters, when the store was built from them.
    spec: Option<SketcherSpec>,
    /// Expected transform tag + dimension (from the spec's sketcher, or
    /// adopted from the first release).
    identity: Option<Identity>,
    /// The store's single tag interner: every decode path routes
    /// through it, so a million releases of one sketcher hold one tag
    /// allocation.
    interner: TagInterner,
    /// Flat `n × k` arena of sketch coordinates.
    values: Vec<f64>,
    /// Per-row noise second moment `E[η²]`.
    m2: Vec<f64>,
    /// Per-row noise fourth moment `E[η⁴]`.
    m4: Vec<f64>,
    /// Per-row hoisted debias constant `2k·E[η²]`.
    debias: Vec<f64>,
    /// Per-row sender identity, in ingest order.
    party_ids: Vec<u64>,
    /// Party id → row, for by-id queries (first row wins on the lenient
    /// ingest path).
    index: PartyIndex,
    /// Running bounds on the noise moments, for the batch span check.
    m2_min: f64,
    m2_max: f64,
    /// Whether every row's hoisted debias constant is **bitwise** equal
    /// to the first row's. The moment-span tolerance admits rows whose
    /// constants differ in the last few ulps, and the all-pairs matrix
    /// debiases pair `(i, j)` with row `min(i, j)`'s constant while a
    /// subset recompute debiases with the subset-order-first row's —
    /// those agree bit-for-bit only under a uniform constant, so this
    /// flag gates the subset-slices-the-memo fast path.
    debias_uniform: bool,
}

impl SketchStore {
    /// A store bound to shared public parameters: the spec is built once
    /// and pins the transform tag and sketch dimension every ingested
    /// release must carry.
    ///
    /// # Errors
    /// [`EngineError::Core`] if the spec cannot build its sketcher.
    pub fn with_spec(spec: SketcherSpec) -> Result<Self, EngineError> {
        let sketcher = spec.build()?;
        let mut store = Self::adopting();
        let tag = store.interner.intern(sketcher.tag());
        store.identity = Some(Identity {
            tag,
            k: sketcher.k(),
        });
        store.spec = Some(spec);
        Ok(store)
    }

    /// A store that adopts the identity (tag, dimension, noise anchor)
    /// of the **first** release it ingests — the behaviour of the old
    /// slice-based query surface, kept for its wrappers and for
    /// observers who receive releases without the spec.
    #[must_use]
    pub fn adopting() -> Self {
        Self {
            m2_min: f64::INFINITY,
            m2_max: f64::NEG_INFINITY,
            debias_uniform: true,
            ..Self::default()
        }
    }

    /// The spec the store was built from, when there is one.
    #[must_use]
    pub fn spec(&self) -> Option<&SketcherSpec> {
        self.spec.as_ref()
    }

    /// Number of ingested rows.
    #[must_use]
    pub fn n(&self) -> usize {
        self.party_ids.len()
    }

    /// Whether no release has been ingested yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.party_ids.is_empty()
    }

    /// The sketch dimension, once known (from the spec or first ingest).
    #[must_use]
    pub fn k(&self) -> Option<usize> {
        self.identity.as_ref().map(|i| i.k)
    }

    /// The transform tag, once known.
    #[must_use]
    pub fn tag(&self) -> Option<&str> {
        self.identity.as_ref().map(|i| &*i.tag)
    }

    /// Party ids in ingest (row) order.
    #[must_use]
    pub fn party_ids(&self) -> &[u64] {
        &self.party_ids
    }

    /// The party id of a row.
    ///
    /// # Panics
    /// If `row` is out of range.
    #[must_use]
    pub fn party_at(&self, row: usize) -> u64 {
        self.party_ids[row]
    }

    /// The row a party id landed in, if ingested.
    #[must_use]
    pub fn row_of(&self, party_id: u64) -> Option<usize> {
        self.index.get(&party_id).copied()
    }

    /// A row's sketch coordinates (a `k`-long slice of the arena).
    ///
    /// # Panics
    /// If `row` is out of range.
    #[must_use]
    pub fn row_values(&self, row: usize) -> &[f64] {
        let k = self.identity.as_ref().expect("rows imply identity").k;
        &self.values[row * k..(row + 1) * k]
    }

    /// A row's hoisted debias constant `2k·E[η²]`.
    ///
    /// # Panics
    /// If `row` is out of range.
    #[must_use]
    pub fn debias_at(&self, row: usize) -> f64 {
        self.debias[row]
    }

    /// Per-row debias constants, in row order.
    #[must_use]
    pub fn debias(&self) -> &[f64] {
        &self.debias
    }

    /// Whether every row's debias constant is bitwise equal to the
    /// first row's (vacuously true for an empty store). When true, the
    /// all-pairs matrix, a subset recompute, and a k-NN scan all apply
    /// *the* constant, so slicing the memoized matrix for a subset
    /// query is bit-identical to recomputing — the gate
    /// [`crate::QueryEngine::pairwise`] checks before reusing its
    /// cache.
    #[must_use]
    pub fn debias_uniform(&self) -> bool {
        self.debias_uniform
    }

    /// Rebuild a row as a standalone [`dp_core::NoisySketch`] (clones
    /// the coordinates; the tag handle is shared from the interner).
    ///
    /// # Panics
    /// If `row` is out of range.
    #[must_use]
    pub fn sketch_at(&self, row: usize) -> dp_core::NoisySketch {
        let identity = self.identity.as_ref().expect("rows imply identity");
        dp_core::NoisySketch::new(
            self.row_values(row).to_vec(),
            Arc::clone(&identity.tag),
            self.m2[row],
            self.m4[row],
        )
    }

    /// Number of distinct transform tags the store's interner has seen
    /// (1 for any healthy store — the regression surface for repeated
    /// ingest).
    #[must_use]
    pub fn interner_len(&self) -> usize {
        self.interner.len()
    }

    /// The store's interner, for callers decoding adjacent payloads who
    /// should share tag allocations with the store instead of growing
    /// their own.
    pub fn interner_mut(&mut self) -> &mut TagInterner {
        &mut self.interner
    }

    /// Ingest a release, rejecting duplicate party ids.
    ///
    /// # Errors
    /// [`EngineError::DuplicateParty`] if the id is present;
    /// [`EngineError::Incompatible`] if the sketch doesn't match the
    /// store's transform tag, dimension, or noise calibration.
    pub fn ingest(&mut self, release: &Release) -> Result<usize, EngineError> {
        if self.index.contains_key(&release.party_id) {
            return Err(EngineError::DuplicateParty(release.party_id));
        }
        self.ingest_row(release)
    }

    /// Ingest a release **without** the duplicate-id check: rows are
    /// positional and later duplicates are not reachable by
    /// [`SketchStore::row_of`]. This is the semantics of the old
    /// slice-based surface (which happily ranked duplicate ids) and is
    /// what its wrappers use; services should prefer
    /// [`SketchStore::ingest`].
    ///
    /// # Errors
    /// [`EngineError::Incompatible`] as for [`SketchStore::ingest`].
    pub fn ingest_row(&mut self, release: &Release) -> Result<usize, EngineError> {
        let sketch = &release.sketch;
        // Validate before interning anything: a stream of rejected
        // releases carrying novel tags must not grow the store's
        // interner — only accepted identities are remembered.
        match &self.identity {
            None => {
                let tag = self.interner.intern(sketch.transform_tag());
                self.identity = Some(Identity { tag, k: sketch.k() });
            }
            Some(identity) => {
                if &*identity.tag != sketch.transform_tag() {
                    return Err(EngineError::Incompatible {
                        party_id: release.party_id,
                        detail: format!(
                            "transform '{}' vs '{}'",
                            identity.tag,
                            sketch.transform_tag()
                        ),
                    });
                }
                if identity.k != sketch.k() {
                    return Err(EngineError::Incompatible {
                        party_id: release.party_id,
                        detail: format!("dimension {} vs {}", identity.k, sketch.k()),
                    });
                }
            }
        }
        let m2 = sketch.noise_second_moment();
        let debias = 2.0 * sketch.k() as f64 * m2;
        if self.is_empty() {
            // First row anchors the noise calibration.
            self.m2_min = m2;
            self.m2_max = m2;
            self.debias_uniform = true;
        } else {
            // Mirror the tiled kernel exactly: a vs-anchor tolerance
            // check plus a bound on the whole batch's moment span, so
            // the store accepts precisely the batches the per-pair
            // reference accepted.
            let anchor = self.m2[0];
            if !moments_compatible(anchor, m2) {
                return Err(EngineError::Incompatible {
                    party_id: release.party_id,
                    detail: format!("noise moment {anchor} vs {m2}"),
                });
            }
            let min = self.m2_min.min(m2);
            let max = self.m2_max.max(m2);
            if (max - min).abs() > 1e-12 * (1.0 + min.abs()) {
                return Err(EngineError::Incompatible {
                    party_id: release.party_id,
                    detail: format!("noise moment span {min} vs {max} exceeds the batch tolerance"),
                });
            }
            self.m2_min = min;
            self.m2_max = max;
            self.debias_uniform =
                self.debias_uniform && debias.to_bits() == self.debias[0].to_bits();
        }
        let row = self.n();
        self.values.extend_from_slice(sketch.values());
        self.m2.push(m2);
        self.m4.push(sketch.noise_fourth_moment());
        self.debias.push(debias);
        self.party_ids.push(release.party_id);
        self.index.entry(release.party_id).or_insert(row);
        Ok(row)
    }

    /// Ingest a batch of releases in order (strict: duplicate party ids
    /// rejected), returning the assigned row per release. Equivalent to
    /// — and bit-identical with — one [`SketchStore::ingest`] per
    /// release: validation, anchoring, and row assignment are the same
    /// sequential code. Fail-fast: the first failing release stops the
    /// batch with its error, and the accepted prefix stays ingested
    /// (the store is append-only; a partial batch is exactly a shorter
    /// batch).
    ///
    /// # Errors
    /// As for [`SketchStore::ingest`], at the first failing release.
    pub fn ingest_batch(&mut self, releases: &[Release]) -> Result<Vec<usize>, EngineError> {
        let mut rows = Vec::with_capacity(releases.len());
        for release in releases {
            rows.push(self.ingest(release)?);
        }
        Ok(rows)
    }

    /// Decode a binary `DPRL` release frame through the store's own
    /// interner and ingest it (strict: duplicate ids rejected).
    ///
    /// # Errors
    /// [`EngineError::Core`] on a malformed frame; ingest errors as for
    /// [`SketchStore::ingest`].
    pub fn ingest_bytes(&mut self, bytes: &[u8]) -> Result<usize, EngineError> {
        // Decode through a scratch interner so a *rejected* frame (bad
        // tag, bad moments, duplicate id) leaves no trace in the
        // store's interner; the accepted row's identity already shares
        // the store's single tag allocation, and the transient decode
        // handle drops with the `Release`.
        let mut scratch = TagInterner::new();
        let release = parse_release_bytes(bytes, &mut scratch)?;
        self.ingest(&release)
    }

    // dp-lint: freeze(snapshot-codec-v1) begin
    /// Serialize the whole store as one self-validating binary snapshot:
    /// magic, version, optional spec JSON, optional identity (tag + k),
    /// the caller's engine `generation`, and the flat per-row arenas
    /// (values, noise moments, party ids) with an FNV-1a-64 trailer.
    ///
    /// Values ship as exact `f64` bit patterns, so a decoded store is
    /// **bit-identical** to the original — including rows that arrived
    /// over the quantized f32 wire (the store already holds their
    /// dequantized coordinates).
    #[must_use]
    pub fn encode_snapshot(&self, generation: u64) -> Vec<u8> {
        let n = self.n();
        let k = self.identity.as_ref().map_or(0, |i| i.k);
        let mut out = Vec::with_capacity(64 + n * (k + 3) * 8 + n * 8);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.push(SNAPSHOT_VERSION);
        match &self.spec {
            Some(spec) => {
                out.push(1);
                let json = spec.to_json();
                out.extend_from_slice(&(json.len() as u32).to_le_bytes());
                out.extend_from_slice(json.as_bytes());
            }
            None => out.push(0),
        }
        match &self.identity {
            Some(identity) => {
                out.push(1);
                out.extend_from_slice(&(identity.tag.len() as u32).to_le_bytes());
                out.extend_from_slice(identity.tag.as_bytes());
                out.extend_from_slice(&(identity.k as u32).to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&generation.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        for v in &self.values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for m in &self.m2 {
            out.extend_from_slice(&m.to_le_bytes());
        }
        for m in &self.m4 {
            out.extend_from_slice(&m.to_le_bytes());
        }
        for id in &self.party_ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }
    // dp-lint: freeze(snapshot-codec-v1) end

    /// Decode a snapshot produced by [`SketchStore::encode_snapshot`],
    /// returning the rebuilt store and the generation it carried.
    ///
    /// Derived state (party index, moment bounds, hoisted debias
    /// constants, the uniform-debias flag) is rebuilt by replaying every
    /// row through [`SketchStore::ingest_row`] — the same code the rows
    /// originally passed — so the result is bit-identical to the source
    /// store, positional duplicates and first-wins index included.
    ///
    /// # Errors
    /// [`EngineError::Core`] with [`CoreError::ChecksumMismatch`] on a
    /// corrupted trailer, or [`CoreError::Wire`] on any structural
    /// defect (bad magic/version, truncation, length inconsistencies,
    /// non-finite floats). Hostile row counts are bounded against the
    /// actual byte length before any allocation.
    pub fn decode_snapshot(bytes: &[u8]) -> Result<(Self, u64), EngineError> {
        let wire = |why: String| EngineError::Core(CoreError::Wire(why));
        let min = SNAPSHOT_MAGIC.len() + 1 + 2 + 8 + 8 + CHECKSUM_LEN;
        if bytes.len() < min {
            return Err(wire(format!("snapshot too short: {} bytes", bytes.len())));
        }
        let (covered, trailer) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        let computed = fnv1a64(covered);
        if stored != computed {
            return Err(EngineError::Core(CoreError::ChecksumMismatch {
                stored,
                computed,
            }));
        }
        struct Cursor<'a> {
            bytes: &'a [u8],
            pos: usize,
        }
        impl<'a> Cursor<'a> {
            fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8], EngineError> {
                let end = self
                    .pos
                    .checked_add(len)
                    .filter(|&e| e <= self.bytes.len())
                    .ok_or_else(|| {
                        EngineError::Core(CoreError::Wire(format!(
                            "snapshot truncated reading {what}"
                        )))
                    })?;
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }

            fn u32(&mut self, what: &str) -> Result<usize, EngineError> {
                let raw = self.take(4, what)?;
                Ok(u32::from_le_bytes(raw.try_into().expect("4 bytes")) as usize)
            }

            fn u64(&mut self, what: &str) -> Result<u64, EngineError> {
                let raw = self.take(8, what)?;
                Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
            }

            fn f64s(&mut self, count: usize, what: &str) -> Result<Vec<f64>, EngineError> {
                let raw = self.take(count * 8, what)?;
                let mut out = Vec::with_capacity(count);
                for chunk in raw.chunks_exact(8) {
                    let v = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                    if !v.is_finite() {
                        return Err(EngineError::Core(CoreError::Wire(format!(
                            "non-finite value in snapshot {what}"
                        ))));
                    }
                    out.push(v);
                }
                Ok(out)
            }
        }
        let mut r = Cursor {
            bytes: covered,
            pos: 0,
        };
        if r.take(4, "magic")? != SNAPSHOT_MAGIC {
            return Err(wire("not a DPSS snapshot".to_string()));
        }
        let version = r.take(1, "version")?[0];
        if version != SNAPSHOT_VERSION {
            return Err(wire(format!("unsupported snapshot version {version}")));
        }
        let spec = match r.take(1, "spec flag")?[0] {
            0 => None,
            1 => {
                let len = r.u32("spec length")?;
                let json = std::str::from_utf8(r.take(len, "spec JSON")?)
                    .map_err(|_| wire("spec JSON is not UTF-8".to_string()))?;
                Some(SketcherSpec::from_json(json)?)
            }
            other => return Err(wire(format!("bad spec flag {other}"))),
        };
        let identity = match r.take(1, "identity flag")?[0] {
            0 => None,
            1 => {
                let len = r.u32("tag length")?;
                let tag = std::str::from_utf8(r.take(len, "tag")?)
                    .map_err(|_| wire("tag is not UTF-8".to_string()))?
                    .to_string();
                let k = r.u32("k")?;
                Some((tag, k))
            }
            other => return Err(wire(format!("bad identity flag {other}"))),
        };
        let generation = r.u64("generation")?;
        let n = r.u64("row count")? as usize;
        let k = identity.as_ref().map_or(0, |(_, k)| *k);
        // Bound the row count by the bytes actually present before any
        // allocation: rows cost (k + 2) f64s + one u64 each.
        let per_row = k
            .checked_add(3)
            .and_then(|w| w.checked_mul(8))
            .ok_or_else(|| wire(format!("sketch dimension {k} overflows")))?;
        let body = n
            .checked_mul(per_row)
            .ok_or_else(|| wire(format!("row count {n} overflows")))?;
        if covered.len() - r.pos != body {
            return Err(wire(format!(
                "snapshot body is {} bytes, expected {body} for {n} rows of k={k}",
                covered.len() - r.pos
            )));
        }
        if n > 0 && identity.is_none() {
            return Err(wire("rows present without an identity".to_string()));
        }
        let mut store = match spec {
            Some(spec) => Self::with_spec(spec)?,
            None => Self::adopting(),
        };
        if let Some((tag, k)) = &identity {
            match &store.identity {
                Some(built) => {
                    if &*built.tag != tag.as_str() || built.k != *k {
                        return Err(wire(format!(
                            "snapshot identity '{tag}' (k={k}) disagrees with its spec \
                             '{}' (k={})",
                            built.tag, built.k
                        )));
                    }
                }
                None => {
                    let tag = store.interner.intern(tag);
                    store.identity = Some(Identity { tag, k: *k });
                }
            }
        }
        let values = r.f64s(n * k, "values")?;
        let m2 = r.f64s(n, "second moments")?;
        let m4 = r.f64s(n, "fourth moments")?;
        let raw_ids = r.take(n * 8, "party ids")?;
        let party_ids: Vec<u64> = raw_ids
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        let tag = store
            .identity
            .as_ref()
            .map(|i| Arc::clone(&i.tag))
            .unwrap_or_else(|| Arc::from(""));
        for row in 0..n {
            let sketch = dp_core::NoisySketch::new(
                values[row * k..(row + 1) * k].to_vec(),
                Arc::clone(&tag),
                m2[row],
                m4[row],
            );
            store
                .ingest_row(&Release {
                    party_id: party_ids[row],
                    sketch,
                })
                .map_err(|e| wire(format!("snapshot row {row} rejected on replay: {e}")))?;
        }
        Ok((store, generation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::config::SketchConfig;
    use dp_core::sketcher::Construction;
    use dp_hashing::Seed;

    fn spec(d: usize) -> SketcherSpec {
        let config = SketchConfig::builder()
            .input_dim(d)
            .alpha(0.3)
            .beta(0.1)
            .epsilon(1.5)
            .build()
            .unwrap();
        SketcherSpec::new(Construction::SjltAuto, config, Seed::new(7))
    }

    fn releases(n: usize, d: usize) -> Vec<Release> {
        let sk = spec(d).build().unwrap();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..d).map(|j| ((i * d + j) % 7) as f64 - 3.0).collect())
            .collect();
        sk.sketch_batch(&rows, Seed::new(500))
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(i, sketch)| Release {
                party_id: 100 + i as u64,
                sketch,
            })
            .collect()
    }

    fn loaded_store(with_spec: bool, n: usize) -> SketchStore {
        let mut store = if with_spec {
            SketchStore::with_spec(spec(24)).unwrap()
        } else {
            SketchStore::adopting()
        };
        for r in releases(n, 24) {
            store.ingest(&r).unwrap();
        }
        store
    }

    fn assert_stores_bit_identical(a: &SketchStore, b: &SketchStore) {
        assert_eq!(a.n(), b.n());
        assert_eq!(a.k(), b.k());
        assert_eq!(a.tag(), b.tag());
        assert_eq!(a.party_ids(), b.party_ids());
        assert_eq!(a.debias_uniform(), b.debias_uniform());
        assert_eq!(
            a.spec().map(SketcherSpec::to_json),
            b.spec().map(SketcherSpec::to_json)
        );
        for row in 0..a.n() {
            let (va, vb) = (a.row_values(row), b.row_values(row));
            assert_eq!(va.len(), vb.len());
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(x.to_bits(), y.to_bits(), "row {row}");
            }
            assert_eq!(a.debias_at(row).to_bits(), b.debias_at(row).to_bits());
            assert_eq!(a.sketch_at(row), b.sketch_at(row));
        }
        for &id in a.party_ids() {
            assert_eq!(a.row_of(id), b.row_of(id), "index for party {id}");
        }
    }

    #[test]
    fn snapshot_roundtrips_bit_identically() {
        for with_spec in [true, false] {
            for n in [0usize, 1, 5] {
                let store = loaded_store(with_spec, n);
                let bytes = store.encode_snapshot(42);
                let (back, generation) = SketchStore::decode_snapshot(&bytes).unwrap();
                assert_eq!(generation, 42, "spec={with_spec} n={n}");
                assert_stores_bit_identical(&store, &back);
                // Re-encoding the decoded store is byte-identical: the
                // codec is a fixed point, which is what lets the disk
                // and wire layers compare snapshots by bytes.
                assert_eq!(back.encode_snapshot(42), bytes);
            }
        }
    }

    #[test]
    fn snapshot_preserves_positional_duplicates_and_first_wins_index() {
        let mut store = SketchStore::adopting();
        let rels = releases(3, 24);
        store.ingest_row(&rels[0]).unwrap();
        store.ingest_row(&rels[1]).unwrap();
        // Same party id again, positionally appended (lenient path).
        let dup = Release {
            party_id: rels[0].party_id,
            sketch: rels[2].sketch.clone(),
        };
        store.ingest_row(&dup).unwrap();
        assert_eq!(store.n(), 3);
        assert_eq!(store.row_of(rels[0].party_id), Some(0));
        let bytes = store.encode_snapshot(1);
        let (back, _) = SketchStore::decode_snapshot(&bytes).unwrap();
        assert_stores_bit_identical(&store, &back);
        assert_eq!(back.row_of(rels[0].party_id), Some(0));
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let store = loaded_store(true, 2);
        let bytes = store.encode_snapshot(7);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                SketchStore::decode_snapshot(&bad).is_err(),
                "byte {i} of {} decoded",
                bytes.len()
            );
        }
        for cut in 0..bytes.len() {
            assert!(
                SketchStore::decode_snapshot(&bytes[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
    }

    #[test]
    fn hostile_row_counts_are_bounded_before_allocation() {
        // A hand-built frame claiming u64::MAX rows with a valid
        // checksum must fail on the length equation, not attempt a
        // multi-exabyte allocation.
        let mut raw = Vec::new();
        raw.extend_from_slice(&SNAPSHOT_MAGIC);
        raw.push(SNAPSHOT_VERSION);
        raw.push(0); // no spec
        raw.push(1); // identity
        raw.extend_from_slice(&3u32.to_le_bytes());
        raw.extend_from_slice(b"tag");
        raw.extend_from_slice(&8u32.to_le_bytes()); // k = 8
        raw.extend_from_slice(&0u64.to_le_bytes()); // generation
        raw.extend_from_slice(&u64::MAX.to_le_bytes()); // hostile n
        let checksum = fnv1a64(&raw);
        raw.extend_from_slice(&checksum.to_le_bytes());
        let err = SketchStore::decode_snapshot(&raw).unwrap_err();
        assert!(
            matches!(err, EngineError::Core(CoreError::Wire(_))),
            "{err}"
        );
    }

    #[test]
    fn checksum_mismatch_is_a_typed_error() {
        let store = loaded_store(false, 2);
        let mut bytes = store.encode_snapshot(0);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let err = SketchStore::decode_snapshot(&bytes).unwrap_err();
        assert!(
            matches!(err, EngineError::Core(CoreError::ChecksumMismatch { .. })),
            "{err}"
        );
    }
}
