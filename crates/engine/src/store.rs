//! The persistent, incremental home of released sketches.
//!
//! A [`SketchStore`] owns the shared [`SketcherSpec`], one
//! [`TagInterner`], and every ingested sketch in a **flat arena**: one
//! contiguous `n × k` `Vec<f64>` of sketch coordinates plus per-row
//! metadata (party id, noise moments, hoisted debias constant). All
//! compatibility checking happens **once, at ingest** — the exact
//! vs-anchor + moment-span discipline of the tiled all-pairs kernel —
//! so the query layer ([`crate::QueryEngine`]) never re-validates and
//! never re-interns, which is what makes per-pair queries O(k) and
//! repeated ingest allocation-free for tags.

use crate::error::EngineError;
use dp_core::release::{parse_release_bytes, Release};
use dp_core::sketcher::{PrivateSketcher, SketcherSpec};
use dp_core::wire::TagInterner;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// A multiply-mix hasher for the party-id index (ids are `u64`s on the
/// hot point-query path, where SipHash costs more than the distance
/// computation it guards). Party ids are *public* protocol data, so the
/// usual DoS caveat of non-keyed hashing is an accepted trade: a peer
/// choosing adversarial ids can degrade its own store's lookups to
/// O(n), not corrupt them.
#[derive(Debug, Default, Clone)]
pub struct PartyIdHasher(u64);

impl Hasher for PartyIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fibonacci-style multiply-xorshift per 8-byte word (party ids
        // arrive as exactly one u64 write).
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.write_u64(u64::from_le_bytes(c.try_into().expect("8 bytes")));
        }
        for &b in chunks.remainder() {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, value: u64) {
        let mut x = self.0 ^ value;
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 32;
        self.0 = x;
    }
}

// dp-lint: allow(hash-collection) — lookup-only party-id index with a fixed
// deterministic hasher; it is never iterated, so no hash order reaches output.
type PartyIndex = HashMap<u64, usize, BuildHasherDefault<PartyIdHasher>>;

/// The relative tolerance under which two noise second moments are
/// considered the same calibration — identical to
/// [`dp_core::NoisySketch::check_compatible`] and the batch span check
/// of the tiled kernel, so a store accepts exactly the batches the
/// slice-based surface accepted.
fn moments_compatible(anchor: f64, other: f64) -> bool {
    (anchor - other).abs() <= 1e-12 * (1.0 + anchor.abs())
}

/// The identity every ingested sketch must match.
#[derive(Debug, Clone)]
struct Identity {
    tag: Arc<str>,
    k: usize,
}

/// A flat-arena store of released sketches sharing one transform.
///
/// Cloning a store copies the flat arenas (`O(n·k)`) but *shares* the
/// interned tag allocations — this is what snapshot publication
/// ([`crate::SharedEngine`]) does on every mutation, so the cost is
/// paid once per ingest, never per query.
#[derive(Debug, Default, Clone)]
pub struct SketchStore {
    /// The shared public parameters, when the store was built from them.
    spec: Option<SketcherSpec>,
    /// Expected transform tag + dimension (from the spec's sketcher, or
    /// adopted from the first release).
    identity: Option<Identity>,
    /// The store's single tag interner: every decode path routes
    /// through it, so a million releases of one sketcher hold one tag
    /// allocation.
    interner: TagInterner,
    /// Flat `n × k` arena of sketch coordinates.
    values: Vec<f64>,
    /// Per-row noise second moment `E[η²]`.
    m2: Vec<f64>,
    /// Per-row noise fourth moment `E[η⁴]`.
    m4: Vec<f64>,
    /// Per-row hoisted debias constant `2k·E[η²]`.
    debias: Vec<f64>,
    /// Per-row sender identity, in ingest order.
    party_ids: Vec<u64>,
    /// Party id → row, for by-id queries (first row wins on the lenient
    /// ingest path).
    index: PartyIndex,
    /// Running bounds on the noise moments, for the batch span check.
    m2_min: f64,
    m2_max: f64,
    /// Whether every row's hoisted debias constant is **bitwise** equal
    /// to the first row's. The moment-span tolerance admits rows whose
    /// constants differ in the last few ulps, and the all-pairs matrix
    /// debiases pair `(i, j)` with row `min(i, j)`'s constant while a
    /// subset recompute debiases with the subset-order-first row's —
    /// those agree bit-for-bit only under a uniform constant, so this
    /// flag gates the subset-slices-the-memo fast path.
    debias_uniform: bool,
}

impl SketchStore {
    /// A store bound to shared public parameters: the spec is built once
    /// and pins the transform tag and sketch dimension every ingested
    /// release must carry.
    ///
    /// # Errors
    /// [`EngineError::Core`] if the spec cannot build its sketcher.
    pub fn with_spec(spec: SketcherSpec) -> Result<Self, EngineError> {
        let sketcher = spec.build()?;
        let mut store = Self::adopting();
        let tag = store.interner.intern(sketcher.tag());
        store.identity = Some(Identity {
            tag,
            k: sketcher.k(),
        });
        store.spec = Some(spec);
        Ok(store)
    }

    /// A store that adopts the identity (tag, dimension, noise anchor)
    /// of the **first** release it ingests — the behaviour of the old
    /// slice-based query surface, kept for its wrappers and for
    /// observers who receive releases without the spec.
    #[must_use]
    pub fn adopting() -> Self {
        Self {
            m2_min: f64::INFINITY,
            m2_max: f64::NEG_INFINITY,
            debias_uniform: true,
            ..Self::default()
        }
    }

    /// The spec the store was built from, when there is one.
    #[must_use]
    pub fn spec(&self) -> Option<&SketcherSpec> {
        self.spec.as_ref()
    }

    /// Number of ingested rows.
    #[must_use]
    pub fn n(&self) -> usize {
        self.party_ids.len()
    }

    /// Whether no release has been ingested yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.party_ids.is_empty()
    }

    /// The sketch dimension, once known (from the spec or first ingest).
    #[must_use]
    pub fn k(&self) -> Option<usize> {
        self.identity.as_ref().map(|i| i.k)
    }

    /// The transform tag, once known.
    #[must_use]
    pub fn tag(&self) -> Option<&str> {
        self.identity.as_ref().map(|i| &*i.tag)
    }

    /// Party ids in ingest (row) order.
    #[must_use]
    pub fn party_ids(&self) -> &[u64] {
        &self.party_ids
    }

    /// The party id of a row.
    ///
    /// # Panics
    /// If `row` is out of range.
    #[must_use]
    pub fn party_at(&self, row: usize) -> u64 {
        self.party_ids[row]
    }

    /// The row a party id landed in, if ingested.
    #[must_use]
    pub fn row_of(&self, party_id: u64) -> Option<usize> {
        self.index.get(&party_id).copied()
    }

    /// A row's sketch coordinates (a `k`-long slice of the arena).
    ///
    /// # Panics
    /// If `row` is out of range.
    #[must_use]
    pub fn row_values(&self, row: usize) -> &[f64] {
        let k = self.identity.as_ref().expect("rows imply identity").k;
        &self.values[row * k..(row + 1) * k]
    }

    /// A row's hoisted debias constant `2k·E[η²]`.
    ///
    /// # Panics
    /// If `row` is out of range.
    #[must_use]
    pub fn debias_at(&self, row: usize) -> f64 {
        self.debias[row]
    }

    /// Per-row debias constants, in row order.
    #[must_use]
    pub fn debias(&self) -> &[f64] {
        &self.debias
    }

    /// Whether every row's debias constant is bitwise equal to the
    /// first row's (vacuously true for an empty store). When true, the
    /// all-pairs matrix, a subset recompute, and a k-NN scan all apply
    /// *the* constant, so slicing the memoized matrix for a subset
    /// query is bit-identical to recomputing — the gate
    /// [`crate::QueryEngine::pairwise`] checks before reusing its
    /// cache.
    #[must_use]
    pub fn debias_uniform(&self) -> bool {
        self.debias_uniform
    }

    /// Rebuild a row as a standalone [`dp_core::NoisySketch`] (clones
    /// the coordinates; the tag handle is shared from the interner).
    ///
    /// # Panics
    /// If `row` is out of range.
    #[must_use]
    pub fn sketch_at(&self, row: usize) -> dp_core::NoisySketch {
        let identity = self.identity.as_ref().expect("rows imply identity");
        dp_core::NoisySketch::new(
            self.row_values(row).to_vec(),
            Arc::clone(&identity.tag),
            self.m2[row],
            self.m4[row],
        )
    }

    /// Number of distinct transform tags the store's interner has seen
    /// (1 for any healthy store — the regression surface for repeated
    /// ingest).
    #[must_use]
    pub fn interner_len(&self) -> usize {
        self.interner.len()
    }

    /// The store's interner, for callers decoding adjacent payloads who
    /// should share tag allocations with the store instead of growing
    /// their own.
    pub fn interner_mut(&mut self) -> &mut TagInterner {
        &mut self.interner
    }

    /// Ingest a release, rejecting duplicate party ids.
    ///
    /// # Errors
    /// [`EngineError::DuplicateParty`] if the id is present;
    /// [`EngineError::Incompatible`] if the sketch doesn't match the
    /// store's transform tag, dimension, or noise calibration.
    pub fn ingest(&mut self, release: &Release) -> Result<usize, EngineError> {
        if self.index.contains_key(&release.party_id) {
            return Err(EngineError::DuplicateParty(release.party_id));
        }
        self.ingest_row(release)
    }

    /// Ingest a release **without** the duplicate-id check: rows are
    /// positional and later duplicates are not reachable by
    /// [`SketchStore::row_of`]. This is the semantics of the old
    /// slice-based surface (which happily ranked duplicate ids) and is
    /// what its wrappers use; services should prefer
    /// [`SketchStore::ingest`].
    ///
    /// # Errors
    /// [`EngineError::Incompatible`] as for [`SketchStore::ingest`].
    pub fn ingest_row(&mut self, release: &Release) -> Result<usize, EngineError> {
        let sketch = &release.sketch;
        // Validate before interning anything: a stream of rejected
        // releases carrying novel tags must not grow the store's
        // interner — only accepted identities are remembered.
        match &self.identity {
            None => {
                let tag = self.interner.intern(sketch.transform_tag());
                self.identity = Some(Identity { tag, k: sketch.k() });
            }
            Some(identity) => {
                if &*identity.tag != sketch.transform_tag() {
                    return Err(EngineError::Incompatible {
                        party_id: release.party_id,
                        detail: format!(
                            "transform '{}' vs '{}'",
                            identity.tag,
                            sketch.transform_tag()
                        ),
                    });
                }
                if identity.k != sketch.k() {
                    return Err(EngineError::Incompatible {
                        party_id: release.party_id,
                        detail: format!("dimension {} vs {}", identity.k, sketch.k()),
                    });
                }
            }
        }
        let m2 = sketch.noise_second_moment();
        let debias = 2.0 * sketch.k() as f64 * m2;
        if self.is_empty() {
            // First row anchors the noise calibration.
            self.m2_min = m2;
            self.m2_max = m2;
            self.debias_uniform = true;
        } else {
            // Mirror the tiled kernel exactly: a vs-anchor tolerance
            // check plus a bound on the whole batch's moment span, so
            // the store accepts precisely the batches the per-pair
            // reference accepted.
            let anchor = self.m2[0];
            if !moments_compatible(anchor, m2) {
                return Err(EngineError::Incompatible {
                    party_id: release.party_id,
                    detail: format!("noise moment {anchor} vs {m2}"),
                });
            }
            let min = self.m2_min.min(m2);
            let max = self.m2_max.max(m2);
            if (max - min).abs() > 1e-12 * (1.0 + min.abs()) {
                return Err(EngineError::Incompatible {
                    party_id: release.party_id,
                    detail: format!("noise moment span {min} vs {max} exceeds the batch tolerance"),
                });
            }
            self.m2_min = min;
            self.m2_max = max;
            self.debias_uniform =
                self.debias_uniform && debias.to_bits() == self.debias[0].to_bits();
        }
        let row = self.n();
        self.values.extend_from_slice(sketch.values());
        self.m2.push(m2);
        self.m4.push(sketch.noise_fourth_moment());
        self.debias.push(debias);
        self.party_ids.push(release.party_id);
        self.index.entry(release.party_id).or_insert(row);
        Ok(row)
    }

    /// Ingest a batch of releases in order (strict: duplicate party ids
    /// rejected), returning the assigned row per release. Equivalent to
    /// — and bit-identical with — one [`SketchStore::ingest`] per
    /// release: validation, anchoring, and row assignment are the same
    /// sequential code. Fail-fast: the first failing release stops the
    /// batch with its error, and the accepted prefix stays ingested
    /// (the store is append-only; a partial batch is exactly a shorter
    /// batch).
    ///
    /// # Errors
    /// As for [`SketchStore::ingest`], at the first failing release.
    pub fn ingest_batch(&mut self, releases: &[Release]) -> Result<Vec<usize>, EngineError> {
        let mut rows = Vec::with_capacity(releases.len());
        for release in releases {
            rows.push(self.ingest(release)?);
        }
        Ok(rows)
    }

    /// Decode a binary `DPRL` release frame through the store's own
    /// interner and ingest it (strict: duplicate ids rejected).
    ///
    /// # Errors
    /// [`EngineError::Core`] on a malformed frame; ingest errors as for
    /// [`SketchStore::ingest`].
    pub fn ingest_bytes(&mut self, bytes: &[u8]) -> Result<usize, EngineError> {
        // Decode through a scratch interner so a *rejected* frame (bad
        // tag, bad moments, duplicate id) leaves no trace in the
        // store's interner; the accepted row's identity already shares
        // the store's single tag allocation, and the transient decode
        // handle drops with the `Release`.
        let mut scratch = TagInterner::new();
        let release = parse_release_bytes(bytes, &mut scratch)?;
        self.ingest(&release)
    }
}
