//! The incremental query surface over a [`SketchStore`].
//!
//! Every query is post-processing of already-private releases, so no
//! query costs privacy budget. The engine adds what the slice-based
//! free functions could not: **persistence** (the all-pairs matrix is
//! cached and only the pairs involving newly ingested rows are
//! computed on the next query) and **hoisting** (compatibility and
//! debias constants were resolved at ingest, so a point query is a pure
//! O(k) fused subtract-square-accumulate).
//!
//! ## Determinism
//!
//! All estimates use the identical floating-point expression of
//! [`dp_core::NoisySketch::estimate_sq_distance`] — a zip-order sum of
//! squared differences minus a hoisted `2k·E[η²]` — so engine answers
//! are bit-identical to the slice-based reference for every thread
//! count, tile size, and ingest/query interleaving. In the all-pairs
//! matrix, pair `(i, j)` with `i < j` is debiased with row `i`'s
//! constant (exactly like the tiled kernel); a k-NN query is debiased
//! with the *query row's* constant (exactly like the old per-query
//! `top_k`). The two agree bit-for-bit whenever the batch was released
//! by one sketcher, which is the only kind the workspace produces.

use crate::error::EngineError;
use crate::gather::Gather;
use crate::store::SketchStore;
use dp_core::release::Release;
use dp_core::sketcher::{effective_plan, execute_tiles, pairwise_sq_distances_rows};
use dp_core::{PairwiseDistances, Parallelism, TilePlan, TileSegment};
use std::sync::Arc;

/// A scored neighbor returned by [`QueryEngine::knn`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The party id of the neighbor.
    pub party_id: u64,
    /// Estimated squared distance (raw, may be negative at small
    /// distances — ranking is still meaningful because the debias term
    /// is shared).
    pub estimated_sq_distance: f64,
}

/// An incremental query engine owning a [`SketchStore`].
#[derive(Debug)]
pub struct QueryEngine {
    store: SketchStore,
    par: Parallelism,
    /// Rows covered by `cache`.
    cached_rows: usize,
    /// The cached `cached_rows × cached_rows` all-pairs matrix, shared
    /// out cheaply (`Arc`) so a warm query copies nothing.
    cache: Arc<PairwiseDistances>,
}

impl Default for QueryEngine {
    fn default() -> Self {
        Self::new(SketchStore::adopting())
    }
}

impl QueryEngine {
    /// Wrap a store (queries run on the environment-default
    /// [`Parallelism`]).
    #[must_use]
    pub fn new(store: SketchStore) -> Self {
        Self {
            store,
            par: Parallelism::default(),
            cached_rows: 0,
            cache: Arc::new(PairwiseDistances::from_flat(0, Vec::new())),
        }
    }

    /// Replace the execution knob. Answers are bit-identical for every
    /// setting; only scheduling changes.
    #[must_use]
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// The execution knob in effect.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// The underlying store.
    #[must_use]
    pub fn store(&self) -> &SketchStore {
        &self.store
    }

    /// Mutable access to the store (e.g. its interner). The engine's
    /// incremental cache stays valid under any store mutation because
    /// the store is append-only.
    pub fn store_mut(&mut self) -> &mut SketchStore {
        &mut self.store
    }

    /// Consume the engine, returning the store.
    #[must_use]
    pub fn into_store(self) -> SketchStore {
        self.store
    }

    /// Ingest a release (strict: duplicate party ids rejected).
    ///
    /// # Errors
    /// See [`SketchStore::ingest`].
    pub fn ingest(&mut self, release: &Release) -> Result<usize, EngineError> {
        self.store.ingest(release)
    }

    /// Ingest a binary `DPRL` frame through the store's interner.
    ///
    /// # Errors
    /// See [`SketchStore::ingest_bytes`].
    pub fn ingest_bytes(&mut self, bytes: &[u8]) -> Result<usize, EngineError> {
        self.store.ingest_bytes(bytes)
    }

    /// Ingest positionally, tolerating duplicate party ids (legacy
    /// slice semantics; see [`SketchStore::ingest_row`]).
    ///
    /// # Errors
    /// See [`SketchStore::ingest_row`].
    pub fn ingest_row(&mut self, release: &Release) -> Result<usize, EngineError> {
        self.store.ingest_row(release)
    }

    /// The debiased squared-distance estimate between two ingested
    /// parties: a pure O(k) pass, no validation, no allocation.
    /// Bit-identical to the corresponding [`QueryEngine::pairwise_all`]
    /// matrix entry.
    ///
    /// # Errors
    /// [`EngineError::UnknownParty`] if either id was never ingested.
    pub fn pair(&self, a: u64, b: u64) -> Result<f64, EngineError> {
        let i = self.store.row_of(a).ok_or(EngineError::UnknownParty(a))?;
        let j = self.store.row_of(b).ok_or(EngineError::UnknownParty(b))?;
        Ok(self.pair_rows(i, j))
    }

    /// [`QueryEngine::pair`] by row index. The pair `(i, j)` is debiased
    /// with the lower row's constant, matching the all-pairs matrix.
    ///
    /// # Panics
    /// If a row is out of range.
    #[must_use]
    pub fn pair_rows(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let raw = raw_sq_distance(self.store.row_values(lo), self.store.row_values(hi));
        raw - self.store.debias_at(lo)
    }

    /// All pairwise estimates among every ingested row, as a flat
    /// row-major matrix in ingest order — **incremental**: the matrix
    /// over previously queried rows is cached, and only pairs touching
    /// rows ingested since the last call are computed (each new row is
    /// one data-parallel task). A cold call runs the tiled kernel; a
    /// warm call with no new rows is O(1) — the returned handle shares
    /// the cache, copying nothing.
    #[must_use]
    pub fn pairwise_all(&mut self) -> Arc<PairwiseDistances> {
        let n = self.store.n();
        if self.cached_rows < n {
            self.extend_cache(n);
        }
        Arc::clone(&self.cache)
    }

    /// All pairwise estimates among an explicit subset of parties, in
    /// the given order (computed fresh each call via the tiled kernel;
    /// only the full-matrix path is cached).
    ///
    /// # Errors
    /// [`EngineError::UnknownParty`] on an id that was never ingested.
    pub fn pairwise(&self, parties: &[u64]) -> Result<PairwiseDistances, EngineError> {
        let rows = parties
            .iter()
            .map(|&p| self.store.row_of(p).ok_or(EngineError::UnknownParty(p)))
            .collect::<Result<Vec<usize>, EngineError>>()?;
        let debias: Vec<f64> = rows.iter().map(|&r| self.store.debias_at(r)).collect();
        Ok(pairwise_sq_distances_rows(
            rows.len(),
            |i| self.store.row_values(rows[i]),
            &debias,
            &self.par,
        ))
    }

    /// The `k` nearest ingested parties to `party` (excluding every row
    /// sharing the query's party id), ascending by estimate. Estimates
    /// use the query row's debias constant, exactly like the per-query
    /// surface this engine replaced.
    ///
    /// # Errors
    /// [`EngineError::UnknownParty`] if the id was never ingested.
    pub fn knn(&self, party: u64, k: usize) -> Result<Vec<Neighbor>, EngineError> {
        let row = self
            .store
            .row_of(party)
            .ok_or(EngineError::UnknownParty(party))?;
        Ok(self.knn_row(row, k))
    }

    /// [`QueryEngine::knn`] by row index (candidates sharing the query
    /// row's party id are excluded).
    ///
    /// # Panics
    /// If `row` is out of range.
    #[must_use]
    pub fn knn_row(&self, row: usize, k: usize) -> Vec<Neighbor> {
        let query_id = self.store.party_at(row);
        let query = self.store.row_values(row);
        let debias = self.store.debias_at(row);
        let mut scored: Vec<Neighbor> = (0..self.store.n())
            .filter(|&c| self.store.party_at(c) != query_id)
            .map(|c| Neighbor {
                party_id: self.store.party_at(c),
                estimated_sq_distance: raw_sq_distance(query, self.store.row_values(c)) - debias,
            })
            .collect();
        scored.sort_by(|a, b| {
            a.estimated_sq_distance
                .partial_cmp(&b.estimated_sq_distance)
                .expect("finite estimates")
        });
        scored.truncate(k);
        scored
    }

    /// The `t` globally closest pairs `(party a, party b, estimate)`,
    /// ascending by estimate (ties in ingest order). Runs on the
    /// incremental all-pairs cache.
    #[must_use]
    pub fn top_pairs(&mut self, t: usize) -> Vec<(u64, u64, f64)> {
        let matrix = self.pairwise_all();
        let n = matrix.n();
        let mut pairs: Vec<(u64, u64, f64)> = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                pairs.push((
                    self.store.party_at(i),
                    self.store.party_at(j),
                    matrix.at(i, j),
                ));
            }
        }
        pairs.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite estimates"));
        pairs.truncate(t);
        pairs
    }

    /// The [`TilePlan`] this engine's cold-start all-pairs pass executes
    /// — also what a coordinator shards across remote workers, so the
    /// local and distributed paths agree on every tile by construction.
    #[must_use]
    pub fn pairwise_plan(&self) -> TilePlan {
        effective_plan(self.store.n(), &self.par)
    }

    /// Execute an explicit set of plan tiles over this engine's store,
    /// returning one [`TileSegment`] per id — the worker half of the
    /// plan → execute → gather pipeline, and exactly what a server
    /// answers a protocol `ExecuteTiles` request with. Bit-identical to
    /// the corresponding entries of [`QueryEngine::pairwise_all`].
    ///
    /// # Errors
    /// [`EngineError::PlanMismatch`] if `plan_rows` differs from the
    /// store's row count; [`EngineError::UnknownTile`] on an id outside
    /// the plan.
    pub fn execute_tiles(
        &self,
        plan_rows: usize,
        tile: usize,
        ids: &[u64],
    ) -> Result<Vec<TileSegment>, EngineError> {
        let plan = self.validate_tiles(plan_rows, tile, ids)?;
        Ok(execute_tiles(
            &plan,
            ids,
            |i| self.store.row_values(i),
            self.store.debias(),
            &self.par,
        ))
    }

    /// The validation half of [`QueryEngine::execute_tiles`], without
    /// executing anything: check the plan against the store and every
    /// id against the plan, returning the plan on success. A streaming
    /// server validates once up front, then executes tile by tile.
    ///
    /// # Errors
    /// As [`QueryEngine::execute_tiles`].
    pub fn validate_tiles(
        &self,
        plan_rows: usize,
        tile: usize,
        ids: &[u64],
    ) -> Result<TilePlan, EngineError> {
        let n = self.store.n();
        if plan_rows != n {
            return Err(EngineError::PlanMismatch {
                store_rows: n,
                plan_rows,
            });
        }
        let plan = TilePlan::new(n, tile);
        let tile_count = plan.tile_count() as u64;
        if let Some(&id) = ids.iter().find(|&&id| id >= tile_count) {
            return Err(EngineError::UnknownTile { id, tile_count });
        }
        Ok(plan)
    }

    /// Grow the cached all-pairs matrix from `cached_rows` to `n` rows
    /// through one pipeline: plan → execute → gather. Cold start
    /// (`cached_rows == 0`) executes every tile; warm growth seeds the
    /// gather from the previous matrix ([`Gather::seeded`]) and
    /// executes only the tiles touching the new rows
    /// ([`TilePlan::tiles_touching_rows`]) — the same frontier logic a
    /// coordinator runs across sockets, so local and distributed growth
    /// are literally one code path. Every tile runs the kernel's exact
    /// per-pair expression, so the matrix is bit-identical to a
    /// from-scratch computation for any growth step sequence.
    fn extend_cache(&mut self, n: usize) {
        let old = self.cached_rows;
        let plan = effective_plan(n, &self.par);
        let ids: Vec<u64> = if old == 0 {
            (0..plan.tile_count() as u64).collect()
        } else {
            plan.tiles_touching_rows(old..n)
                .into_iter()
                .map(|id| id as u64)
                .collect()
        };
        let segments = execute_tiles(
            &plan,
            &ids,
            |i| self.store.row_values(i),
            self.store.debias(),
            &self.par,
        );
        let mut gather = Gather::seeded(plan, old, self.cache.as_flat());
        for segment in &segments {
            gather
                .accept(segment)
                .expect("locally executed segments always fit their plan");
        }
        self.cache = Arc::new(
            gather
                .finish()
                .expect("the frontier covers every missing tile"),
        );
        self.cached_rows = n;
    }
}

/// The kernel's inner expression: zip-order sum of squared differences.
#[inline]
fn raw_sq_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}
