//! The incremental query surface over a [`SketchStore`].
//!
//! Every query is post-processing of already-private releases, so no
//! query costs privacy budget. The engine adds what the slice-based
//! free functions could not: **persistence** (the all-pairs matrix is
//! cached and only the pairs involving newly ingested rows are
//! computed on the next query) and **hoisting** (compatibility and
//! debias constants were resolved at ingest, so a point query is a pure
//! O(k) fused subtract-square-accumulate).
//!
//! ## Determinism
//!
//! All estimates run the versioned accumulator of [`dp_core::kernel`]
//! under one [`KernelId`] per engine — a raw sum of squared
//! differences minus a hoisted `2k·E[η²]` — so engine answers are
//! bit-identical to the slice-based reference for every thread count,
//! tile size, and ingest/query interleaving *within a kernel version*
//! (the default `V1Scalar` reproduces
//! [`dp_core::NoisySketch::estimate_sq_distance`] exactly). Point
//! queries and the all-pairs matrix share the engine's kernel, so they
//! agree bit-for-bit under `V2Simd` too. In the all-pairs matrix, pair
//! `(i, j)` with `i < j` is debiased with row `i`'s constant (exactly
//! like the tiled kernel); a k-NN query is debiased with the *query
//! row's* constant (exactly like the old per-query `top_k`). The two
//! agree bit-for-bit whenever the batch was released by one sketcher,
//! which is the only kind the workspace produces.

use crate::error::EngineError;
use crate::gather::Gather;
use crate::store::SketchStore;
use dp_core::release::Release;
use dp_core::sketcher::{effective_plan, execute_tiles, pairwise_sq_distances_rows};
use dp_core::PrivateSketcher;
use dp_core::{KernelId, PairwiseDistances, Parallelism, TilePlan, TileSegment};
use std::sync::Arc;

/// A scored neighbor returned by [`QueryEngine::knn`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The party id of the neighbor.
    pub party_id: u64,
    /// Estimated squared distance (raw, may be negative at small
    /// distances — ranking is still meaningful because the debias term
    /// is shared).
    pub estimated_sq_distance: f64,
}

/// An incremental query engine owning a [`SketchStore`].
#[derive(Debug)]
pub struct QueryEngine {
    store: SketchStore,
    par: Parallelism,
    /// Rows covered by `cache`.
    cached_rows: usize,
    /// The cached `cached_rows × cached_rows` all-pairs matrix, shared
    /// out cheaply (`Arc`) so a warm query copies nothing.
    cache: Arc<PairwiseDistances>,
    /// Bumped on every observable mutation (successful ingest, cache
    /// growth) — the signal [`crate::SharedEngine`] uses to decide
    /// whether a fresh [`crate::EngineSnapshot`] must be published.
    generation: u64,
}

impl Default for QueryEngine {
    fn default() -> Self {
        Self::new(SketchStore::adopting())
    }
}

impl QueryEngine {
    /// Wrap a store (queries run on the environment-default
    /// [`Parallelism`]). A spec-carrying store pins the engine's kernel
    /// to the spec's [`KernelId`] — the spec is the negotiated identity
    /// a fleet agrees on, so the executing kernel must follow it, not
    /// the local environment.
    #[must_use]
    pub fn new(store: SketchStore) -> Self {
        let mut par = Parallelism::default();
        if let Some(spec) = store.spec() {
            par = par.with_kernel(spec.kernel());
        }
        Self {
            store,
            par,
            cached_rows: 0,
            cache: Arc::new(PairwiseDistances::from_flat(0, Vec::new())),
            generation: 0,
        }
    }

    /// Replace the execution knob. Answers are bit-identical for every
    /// setting; only scheduling changes.
    #[must_use]
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// The execution knob in effect.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// The mutation generation: bumped on every successful ingest and
    /// every all-pairs cache growth. Two calls returning the same value
    /// bracket a window with no observable engine mutation — what
    /// [`crate::SharedEngine::mutate`] compares to skip republishing an
    /// unchanged snapshot.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Override the mutation generation — for callers that *replace* an
    /// engine wholesale (the server's `Hello` spec adoption builds a
    /// fresh engine) and must keep the generation moving forward so
    /// snapshot publication notices the swap.
    #[must_use]
    pub fn with_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// The underlying store.
    #[must_use]
    pub fn store(&self) -> &SketchStore {
        &self.store
    }

    /// Mutable access to the store (e.g. its interner). The engine's
    /// incremental cache stays valid under any store mutation because
    /// the store is append-only.
    pub fn store_mut(&mut self) -> &mut SketchStore {
        &mut self.store
    }

    /// Consume the engine, returning the store.
    #[must_use]
    pub fn into_store(self) -> SketchStore {
        self.store
    }

    /// Ingest a release (strict: duplicate party ids rejected).
    ///
    /// # Errors
    /// See [`SketchStore::ingest`].
    pub fn ingest(&mut self, release: &Release) -> Result<usize, EngineError> {
        let row = self.store.ingest(release)?;
        self.generation += 1;
        Ok(row)
    }

    /// Ingest a binary `DPRL` frame through the store's interner.
    ///
    /// # Errors
    /// See [`SketchStore::ingest_bytes`].
    pub fn ingest_bytes(&mut self, bytes: &[u8]) -> Result<usize, EngineError> {
        let row = self.store.ingest_bytes(bytes)?;
        self.generation += 1;
        Ok(row)
    }

    /// Ingest a batch of releases with **one** generation bump, so
    /// snapshot republication and cache invalidation cost once per bulk
    /// load instead of once per row. Row assignment and validation are
    /// bit-identical to one [`QueryEngine::ingest`] per release.
    ///
    /// # Errors
    /// See [`SketchStore::ingest_batch`]; on a mid-batch failure the
    /// accepted prefix stays ingested and the generation still bumps.
    pub fn ingest_batch(&mut self, releases: &[Release]) -> Result<Vec<usize>, EngineError> {
        let before = self.store.n();
        let result = self.store.ingest_batch(releases);
        if self.store.n() != before {
            self.generation += 1;
        }
        result
    }

    /// Server-side bulk load: sketch raw rows under the store's spec —
    /// the negotiated kernel rides the spec, so the batch projection
    /// kernels of [`dp_core::kernel`] do the work — then ingest the
    /// releases under the given party ids. Per-row noise seeds are
    /// `noise_seed.index(row)`, exactly the `sketch_batch` contract, so
    /// the ingested bytes are bit-identical to sketching each row alone
    /// and ingesting one at a time.
    ///
    /// # Errors
    /// [`EngineError::Core`] if the store has no spec, the id/row
    /// counts differ, or sketching fails; ingest errors as for
    /// [`QueryEngine::ingest_batch`].
    pub fn sketch_and_ingest_batch(
        &mut self,
        party_ids: &[u64],
        xs: &[Vec<f64>],
        noise_seed: dp_hashing::Seed,
    ) -> Result<Vec<usize>, EngineError> {
        if party_ids.len() != xs.len() {
            return Err(EngineError::Core(dp_core::CoreError::Unsupported(
                "sketch_and_ingest_batch needs one party id per row",
            )));
        }
        let spec = self
            .store
            .spec()
            .ok_or(EngineError::Core(dp_core::CoreError::Unsupported(
                "sketch_and_ingest_batch needs a store built with a spec",
            )))?
            .clone();
        let sketcher = spec.build_with(self.par)?;
        let sketches = sketcher.sketch_batch(xs, noise_seed)?;
        let releases: Vec<Release> = party_ids
            .iter()
            .zip(sketches)
            .map(|(&party_id, sketch)| Release { party_id, sketch })
            .collect();
        self.ingest_batch(&releases)
    }

    /// Ingest positionally, tolerating duplicate party ids (legacy
    /// slice semantics; see [`SketchStore::ingest_row`]).
    ///
    /// # Errors
    /// See [`SketchStore::ingest_row`].
    pub fn ingest_row(&mut self, release: &Release) -> Result<usize, EngineError> {
        let row = self.store.ingest_row(release)?;
        self.generation += 1;
        Ok(row)
    }

    /// The debiased squared-distance estimate between two ingested
    /// parties: a pure O(k) pass, no validation, no allocation.
    /// Bit-identical to the corresponding [`QueryEngine::pairwise_all`]
    /// matrix entry.
    ///
    /// # Errors
    /// [`EngineError::UnknownParty`] if either id was never ingested.
    pub fn pair(&self, a: u64, b: u64) -> Result<f64, EngineError> {
        let i = self.store.row_of(a).ok_or(EngineError::UnknownParty(a))?;
        let j = self.store.row_of(b).ok_or(EngineError::UnknownParty(b))?;
        Ok(self.pair_rows(i, j))
    }

    /// [`QueryEngine::pair`] by row index. The pair `(i, j)` is debiased
    /// with the lower row's constant, matching the all-pairs matrix.
    ///
    /// # Panics
    /// If a row is out of range.
    #[must_use]
    pub fn pair_rows(&self, i: usize, j: usize) -> f64 {
        pair_rows_over(&self.store, i, j, self.par.kernel())
    }

    /// All pairwise estimates among every ingested row, as a flat
    /// row-major matrix in ingest order — **incremental**: the matrix
    /// over previously queried rows is cached, and only pairs touching
    /// rows ingested since the last call are computed (each new row is
    /// one data-parallel task). A cold call runs the tiled kernel; a
    /// warm call with no new rows is O(1) — the returned handle shares
    /// the cache, copying nothing.
    #[must_use]
    pub fn pairwise_all(&mut self) -> Arc<PairwiseDistances> {
        let n = self.store.n();
        if self.cached_rows < n {
            self.extend_cache(n);
        }
        Arc::clone(&self.cache)
    }

    /// The cached all-pairs matrix, **iff** it currently covers every
    /// ingested row — the memo a published [`crate::EngineSnapshot`]
    /// carries, and what the subset fast path slices. Never computes
    /// anything; a stale cache yields `None`.
    #[must_use]
    pub fn cached_matrix(&self) -> Option<Arc<PairwiseDistances>> {
        (self.cached_rows == self.store.n() && self.store.n() > 0).then(|| Arc::clone(&self.cache))
    }

    /// All pairwise estimates among an explicit subset of parties, in
    /// the given order. When the full-matrix memo is warm and slicing
    /// it is provably bit-identical to recomputing (uniform debias
    /// constant, distinct rows — see [`subset_pairwise`]), the answer
    /// is sliced out of the cache in O(|subset|²); otherwise it is
    /// computed fresh via the tiled kernel.
    ///
    /// # Errors
    /// [`EngineError::UnknownParty`] on an id that was never ingested.
    pub fn pairwise(&self, parties: &[u64]) -> Result<PairwiseDistances, EngineError> {
        let rows = resolve_rows(&self.store, parties)?;
        let memo = self.cached_matrix();
        Ok(subset_pairwise(
            &self.store,
            &rows,
            memo.as_deref(),
            &self.par,
        ))
    }

    /// The `k` nearest ingested parties to `party` (excluding every row
    /// sharing the query's party id), ascending by estimate. Estimates
    /// use the query row's debias constant, exactly like the per-query
    /// surface this engine replaced.
    ///
    /// # Errors
    /// [`EngineError::UnknownParty`] if the id was never ingested.
    pub fn knn(&self, party: u64, k: usize) -> Result<Vec<Neighbor>, EngineError> {
        let row = self
            .store
            .row_of(party)
            .ok_or(EngineError::UnknownParty(party))?;
        Ok(self.knn_row(row, k))
    }

    /// [`QueryEngine::knn`] by row index (candidates sharing the query
    /// row's party id are excluded).
    ///
    /// # Panics
    /// If `row` is out of range.
    #[must_use]
    pub fn knn_row(&self, row: usize, k: usize) -> Vec<Neighbor> {
        knn_over(&self.store, row, k, self.par.kernel())
    }

    /// The `t` globally closest pairs `(party a, party b, estimate)`,
    /// ascending by estimate (ties in ingest order). Runs on the
    /// incremental all-pairs cache.
    #[must_use]
    pub fn top_pairs(&mut self, t: usize) -> Vec<(u64, u64, f64)> {
        let matrix = self.pairwise_all();
        top_pairs_over(&self.store, &matrix, t)
    }

    /// The [`TilePlan`] this engine's cold-start all-pairs pass executes
    /// — also what a coordinator shards across remote workers, so the
    /// local and distributed paths agree on every tile by construction.
    #[must_use]
    pub fn pairwise_plan(&self) -> TilePlan {
        effective_plan(self.store.n(), &self.par)
    }

    /// Execute an explicit set of plan tiles over this engine's store,
    /// returning one [`TileSegment`] per id — the worker half of the
    /// plan → execute → gather pipeline, and exactly what a server
    /// answers a protocol `ExecuteTiles` request with. Bit-identical to
    /// the corresponding entries of [`QueryEngine::pairwise_all`].
    ///
    /// # Errors
    /// [`EngineError::PlanMismatch`] if `plan_rows` differs from the
    /// store's row count; [`EngineError::UnknownTile`] on an id outside
    /// the plan.
    pub fn execute_tiles(
        &self,
        plan_rows: usize,
        tile: usize,
        ids: &[u64],
    ) -> Result<Vec<TileSegment>, EngineError> {
        let plan = self.validate_tiles(plan_rows, tile, ids)?;
        Ok(execute_tiles_over(&self.store, &plan, ids, &self.par))
    }

    /// The validation half of [`QueryEngine::execute_tiles`], without
    /// executing anything: check the plan against the store and every
    /// id against the plan, returning the plan on success. A streaming
    /// server validates once up front, then executes tile by tile.
    ///
    /// # Errors
    /// As [`QueryEngine::execute_tiles`].
    pub fn validate_tiles(
        &self,
        plan_rows: usize,
        tile: usize,
        ids: &[u64],
    ) -> Result<TilePlan, EngineError> {
        validate_tiles_over(&self.store, plan_rows, tile, ids)
    }

    /// Grow the cached all-pairs matrix from `cached_rows` to `n` rows
    /// through one pipeline: plan → execute → gather. Cold start
    /// (`cached_rows == 0`) executes every tile; warm growth seeds the
    /// gather from the previous matrix ([`Gather::seeded`]) and
    /// executes only the tiles touching the new rows
    /// ([`TilePlan::tiles_touching_rows`]) — the same frontier logic a
    /// coordinator runs across sockets, so local and distributed growth
    /// are literally one code path. Every tile runs the kernel's exact
    /// per-pair expression, so the matrix is bit-identical to a
    /// from-scratch computation for any growth step sequence.
    fn extend_cache(&mut self, n: usize) {
        let old = self.cached_rows;
        let plan = effective_plan(n, &self.par);
        let ids: Vec<u64> = if old == 0 {
            (0..plan.tile_count() as u64).collect()
        } else {
            plan.tiles_touching_rows(old..n)
                .into_iter()
                .map(|id| id as u64)
                .collect()
        };
        let segments = execute_tiles_over(&self.store, &plan, &ids, &self.par);
        let mut gather = Gather::seeded(plan, old, self.cache.as_flat());
        for segment in &segments {
            gather
                .accept(segment)
                .expect("locally executed segments always fit their plan");
        }
        self.cache = Arc::new(
            gather
                .finish()
                .expect("the frontier covers every missing tile"),
        );
        self.cached_rows = n;
        self.generation += 1;
    }
}

/// Resolve party ids to store rows, in the caller's order.
///
/// # Errors
/// [`EngineError::UnknownParty`] on an id that was never ingested.
pub(crate) fn resolve_rows(
    store: &SketchStore,
    parties: &[u64],
) -> Result<Vec<usize>, EngineError> {
    parties
        .iter()
        .map(|&p| store.row_of(p).ok_or(EngineError::UnknownParty(p)))
        .collect()
}

/// The per-pair estimate between two store rows: pair `(i, j)` is
/// debiased with the **lower** row's constant, matching the all-pairs
/// matrix. The single expression behind [`QueryEngine::pair`] and
/// [`crate::EngineSnapshot::pair`] — one body, so the locked and the
/// snapshot read paths cannot drift.
pub(crate) fn pair_rows_over(store: &SketchStore, i: usize, j: usize, kernel: KernelId) -> f64 {
    if i == j {
        return 0.0;
    }
    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
    let raw = raw_sq_distance(kernel, store.row_values(lo), store.row_values(hi));
    raw - store.debias_at(lo)
}

/// Subset pairwise with the memo fast path. Slicing the full matrix is
/// used only when it is **provably bit-identical** to a cold tiled
/// recompute over the subset:
///
/// * `memo` covers every store row (the caller checked), and
/// * the store's debias constant is bitwise uniform across rows — the
///   matrix debiases pair `(i, j)` with store-row `min(i, j)`'s
///   constant while a recompute uses the subset-order-first row's, and
///   those agree for every ordering only under one shared constant, and
/// * the resolved rows are distinct — a duplicated row yields `0.0` on
///   the matrix diagonal but `-debias` from a recompute (the raw
///   distance of a row to itself is exactly `0.0` *before* debiasing).
///
/// The raw kernel expression itself is orientation-proof: a zip-order
/// sum of `(x − y)²` is bitwise symmetric in its arguments, so matrix
/// entry `(a, b)` equals the subset's `(b, a)` exactly.
pub(crate) fn subset_pairwise(
    store: &SketchStore,
    rows: &[usize],
    memo: Option<&PairwiseDistances>,
    par: &Parallelism,
) -> PairwiseDistances {
    if let Some(matrix) = memo {
        if store.debias_uniform() && rows_distinct(rows, store.n()) {
            let m = rows.len();
            let mut flat = Vec::with_capacity(m * m);
            for &a in rows {
                for &b in rows {
                    flat.push(matrix.at(a, b));
                }
            }
            return PairwiseDistances::from_flat(m, flat);
        }
    }
    let debias: Vec<f64> = rows.iter().map(|&r| store.debias_at(r)).collect();
    pairwise_sq_distances_rows(rows.len(), |i| store.row_values(rows[i]), &debias, par)
}

/// Whether every row index appears at most once (`n` = store rows, for
/// a one-pass bitmap instead of a hash set).
fn rows_distinct(rows: &[usize], n: usize) -> bool {
    let mut seen = vec![false; n];
    rows.iter().all(|&r| !std::mem::replace(&mut seen[r], true))
}

/// The k-NN scan behind [`QueryEngine::knn_row`] and
/// [`crate::EngineSnapshot::knn`]: every candidate not sharing the
/// query row's party id, scored with the **query row's** debias
/// constant, ascending, truncated to `k`.
pub(crate) fn knn_over(
    store: &SketchStore,
    row: usize,
    k: usize,
    kernel: KernelId,
) -> Vec<Neighbor> {
    let query_id = store.party_at(row);
    let query = store.row_values(row);
    let debias = store.debias_at(row);
    let mut scored: Vec<Neighbor> = (0..store.n())
        .filter(|&c| store.party_at(c) != query_id)
        .map(|c| Neighbor {
            party_id: store.party_at(c),
            estimated_sq_distance: raw_sq_distance(kernel, query, store.row_values(c)) - debias,
        })
        .collect();
    scored.sort_by(|a, b| {
        a.estimated_sq_distance
            .partial_cmp(&b.estimated_sq_distance)
            .expect("finite estimates")
    });
    scored.truncate(k);
    scored
}

/// The `t` globally closest pairs over an already-materialized matrix,
/// ascending by estimate (ties in ingest order).
pub(crate) fn top_pairs_over(
    store: &SketchStore,
    matrix: &PairwiseDistances,
    t: usize,
) -> Vec<(u64, u64, f64)> {
    let n = matrix.n();
    let mut pairs: Vec<(u64, u64, f64)> = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            pairs.push((store.party_at(i), store.party_at(j), matrix.at(i, j)));
        }
    }
    pairs.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite estimates"));
    pairs.truncate(t);
    pairs
}

/// The plan-vs-store and id-vs-plan validation behind
/// [`QueryEngine::validate_tiles`] and the snapshot's tile surface.
///
/// # Errors
/// [`EngineError::PlanMismatch`] / [`EngineError::UnknownTile`].
pub(crate) fn validate_tiles_over(
    store: &SketchStore,
    plan_rows: usize,
    tile: usize,
    ids: &[u64],
) -> Result<TilePlan, EngineError> {
    let n = store.n();
    if plan_rows != n {
        return Err(EngineError::PlanMismatch {
            store_rows: n,
            plan_rows,
        });
    }
    let plan = TilePlan::new(n, tile);
    let tile_count = plan.tile_count() as u64;
    if let Some(&id) = ids.iter().find(|&&id| id >= tile_count) {
        return Err(EngineError::UnknownTile { id, tile_count });
    }
    Ok(plan)
}

/// Execute plan tiles against a store — the one call site of the tiled
/// kernel shared by the engine's cache growth, its `ExecuteTiles`
/// surface, and the snapshot's.
pub(crate) fn execute_tiles_over(
    store: &SketchStore,
    plan: &TilePlan,
    ids: &[u64],
    par: &Parallelism,
) -> Vec<TileSegment> {
    execute_tiles(plan, ids, |i| store.row_values(i), store.debias(), par)
}

/// The kernel's inner expression: the versioned accumulator from
/// [`dp_core::kernel`]. `V1Scalar` is the historic zip-order sum of
/// squared differences, bit for bit.
#[inline]
fn raw_sq_distance(kernel: KernelId, a: &[f64], b: &[f64]) -> f64 {
    dp_core::kernel::sq_distance(kernel, a, b)
}
