//! The gather half of the plan → execute → gather pipeline.
//!
//! A [`Gather`] is constructed over one [`TilePlan`] and accepts the
//! plan's executed [`TileSegment`]s **in any order** — from local
//! threads, from remote shards, interleaved, shuffled — scattering each
//! into the flat row-major matrix as it arrives. Because the plan's
//! tiles partition the pair set exactly (proptested in `dp-parallel`),
//! a completed gather is bit-identical to the sequential reference: no
//! reconciliation, no averaging, no ordering sensitivity.
//!
//! Everything that can go wrong is a typed [`GatherError`]: a segment
//! for a tile the plan doesn't contain, a second segment for a tile
//! already placed (the only way two segments could overlap under a
//! partition plan), a segment whose length doesn't match its tile's
//! pair count (a worker executing a *different* plan), and finishing
//! with tiles still missing (a shard that never reported).

use dp_core::sketcher::scatter_tile_segment;
use dp_core::{PairwiseDistances, TilePlan, TileSegment};
use std::fmt;

/// A typed failure of the gather assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatherError {
    /// A segment named a tile id outside the plan.
    UnknownTile {
        /// The offending id.
        id: u64,
        /// The plan's tile count (valid ids are `0..tile_count`).
        tile_count: u64,
    },
    /// A second segment arrived for a tile already placed — under a
    /// partition plan, the only way two segments can overlap.
    DuplicateTile {
        /// The tile id placed twice.
        id: u64,
    },
    /// A segment's length does not match its tile's pair count (the
    /// executor ran a different plan than the gatherer holds).
    SegmentShape {
        /// The tile id.
        id: u64,
        /// The pair count the gatherer's plan dictates.
        expected: usize,
        /// The length the segment actually carried.
        actual: usize,
    },
    /// [`Gather::finish`] was called with tiles still unplaced.
    Incomplete {
        /// Segments placed so far.
        received: usize,
        /// Segments the plan requires.
        expected: usize,
        /// The lowest missing tile id.
        first_missing: u64,
    },
}

impl fmt::Display for GatherError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTile { id, tile_count } => {
                write!(f, "tile id {id} outside the plan ({tile_count} tiles)")
            }
            Self::DuplicateTile { id } => {
                write!(f, "tile id {id} delivered twice (overlapping segments)")
            }
            Self::SegmentShape {
                id,
                expected,
                actual,
            } => write!(
                f,
                "segment for tile {id} carries {actual} estimates, plan dictates {expected}"
            ),
            Self::Incomplete {
                received,
                expected,
                first_missing,
            } => write!(
                f,
                "gather incomplete: {received} of {expected} tiles placed \
                 (first missing id {first_missing})"
            ),
        }
    }
}

impl std::error::Error for GatherError {}

/// Assembles out-of-order [`TileSegment`]s into the full
/// [`PairwiseDistances`] matrix of one [`TilePlan`].
#[derive(Debug)]
pub struct Gather {
    plan: TilePlan,
    values: Vec<f64>,
    placed: Vec<bool>,
    received: usize,
}

impl Gather {
    /// An empty gather over a plan (allocates the `n × n` matrix once).
    #[must_use]
    pub fn new(plan: TilePlan) -> Self {
        let n = plan.n();
        Self {
            plan,
            values: vec![0.0; n * n],
            placed: vec![false; plan.tile_count()],
            received: 0,
        }
    }

    /// An **incremental** gather over a grown store: seed the matrix
    /// with the previous `old_rows × old_rows` result and pre-place
    /// every tile lying entirely inside the old rows — their pairs are
    /// all in `old`, copied bit-for-bit. What remains missing is
    /// exactly [`TilePlan::tiles_touching_rows`]`(old_rows..n)`: the
    /// `O(new·n)` frontier a coordinator re-executes after ingesting
    /// new rows, instead of the whole quadratic plan. A completed
    /// seeded gather is bit-identical to a cold full gather because the
    /// seed rows were produced by the same kernel.
    ///
    /// `old_rows == 0` degenerates to [`Gather::new`].
    ///
    /// # Panics
    /// If `old.len() != old_rows²` or `old_rows > plan.n()` — the seed
    /// must be the previous gathered matrix of the same store.
    #[must_use]
    pub fn seeded(plan: TilePlan, old_rows: usize, old: &[f64]) -> Self {
        assert!(
            old_rows <= plan.n(),
            "seed of {old_rows} rows for a plan over {} rows",
            plan.n()
        );
        assert_eq!(
            old.len(),
            old_rows * old_rows,
            "seed matrix is not {old_rows}×{old_rows}"
        );
        let mut gather = Self::new(plan);
        if old_rows == 0 {
            return gather;
        }
        let n = plan.n();
        for i in 0..old_rows {
            gather.values[i * n..i * n + old_rows]
                .copy_from_slice(&old[i * old_rows..(i + 1) * old_rows]);
        }
        for (id, t) in plan.tiles() {
            if t.row_end <= old_rows && t.col_end <= old_rows {
                gather.placed[id] = true;
                gather.received += 1;
            }
        }
        gather
    }

    /// The governing plan.
    #[must_use]
    pub fn plan(&self) -> &TilePlan {
        &self.plan
    }

    /// Segments placed so far.
    #[must_use]
    pub fn received(&self) -> usize {
        self.received
    }

    /// Whether every tile of the plan has been placed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.received == self.plan.tile_count()
    }

    /// Tile ids not yet placed, ascending — what a coordinator would
    /// re-dispatch after a shard failure.
    #[must_use]
    pub fn missing_ids(&self) -> Vec<u64> {
        self.placed
            .iter()
            .enumerate()
            .filter(|(_, &p)| !p)
            .map(|(id, _)| id as u64)
            .collect()
    }

    /// Scatter one segment into the matrix.
    ///
    /// # Errors
    /// [`GatherError::UnknownTile`], [`GatherError::DuplicateTile`], or
    /// [`GatherError::SegmentShape`]; the gather is unchanged on error,
    /// so a coordinator can reject one bad worker answer and keep the
    /// segments already placed.
    pub fn accept(&mut self, segment: &TileSegment) -> Result<(), GatherError> {
        let tile_count = self.plan.tile_count();
        let id = usize::try_from(segment.tile_id)
            .ok()
            .filter(|&id| id < tile_count)
            .ok_or(GatherError::UnknownTile {
                id: segment.tile_id,
                tile_count: tile_count as u64,
            })?;
        let tile = self.plan.tile_at(id).expect("id validated");
        if self.placed[id] {
            return Err(GatherError::DuplicateTile { id: id as u64 });
        }
        if segment.values.len() != tile.pair_count() {
            return Err(GatherError::SegmentShape {
                id: id as u64,
                expected: tile.pair_count(),
                actual: segment.values.len(),
            });
        }
        scatter_tile_segment(&tile, &segment.values, self.plan.n(), &mut self.values);
        self.placed[id] = true;
        self.received += 1;
        Ok(())
    }

    /// Finish the gather, returning the assembled matrix.
    ///
    /// # Errors
    /// [`GatherError::Incomplete`] if any tile is still missing.
    pub fn finish(self) -> Result<PairwiseDistances, GatherError> {
        if !self.is_complete() {
            let first_missing = self
                .placed
                .iter()
                .position(|&p| !p)
                .expect("incomplete implies a missing tile") as u64;
            return Err(GatherError::Incomplete {
                received: self.received,
                expected: self.plan.tile_count(),
                first_missing,
            });
        }
        Ok(PairwiseDistances::from_flat(self.plan.n(), self.values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::sketcher::execute_tiles;
    use dp_core::Parallelism;

    /// Deterministic fake rows: enough structure for scatter checks.
    fn rows(n: usize, k: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..k).map(|j| ((i * k + j) % 5) as f64 - 2.0).collect())
            .collect()
    }

    fn segments_for(plan: &TilePlan, data: &[Vec<f64>], debias: &[f64]) -> Vec<TileSegment> {
        let ids: Vec<u64> = (0..plan.tile_count() as u64).collect();
        execute_tiles(
            plan,
            &ids,
            |i| data[i].as_slice(),
            debias,
            &Parallelism::sequential(),
        )
    }

    #[test]
    fn shuffled_segments_assemble_the_reference_matrix() {
        let n = 9;
        let data = rows(n, 6);
        let debias = vec![0.25; n];
        let plan = TilePlan::new(n, 4);
        let reference = dp_core::pairwise_sq_distances_rows(
            n,
            |i| data[i].as_slice(),
            &debias,
            &Parallelism::sequential(),
        );
        let mut segments = segments_for(&plan, &data, &debias);
        segments.reverse(); // out-of-order arrival
        let mut gather = Gather::new(plan);
        assert!(!gather.is_complete());
        for s in &segments {
            gather.accept(s).unwrap();
        }
        assert!(gather.is_complete());
        assert!(gather.missing_ids().is_empty());
        let got = gather.finish().unwrap();
        assert_eq!(got.n(), reference.n());
        for (a, b) in reference.as_flat().iter().zip(got.as_flat()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn typed_errors_for_every_failure_mode() {
        let n = 9;
        let data = rows(n, 6);
        let debias = vec![0.0; n];
        let plan = TilePlan::new(n, 4);
        let segments = segments_for(&plan, &data, &debias);
        let mut gather = Gather::new(plan);

        // Unknown tile id.
        let alien = TileSegment {
            tile_id: plan.tile_count() as u64,
            values: vec![],
        };
        assert_eq!(
            gather.accept(&alien),
            Err(GatherError::UnknownTile {
                id: plan.tile_count() as u64,
                tile_count: plan.tile_count() as u64,
            })
        );

        // Wrong shape (a segment from a different plan).
        let misshapen = TileSegment {
            tile_id: 0,
            values: vec![1.0],
        };
        assert!(matches!(
            gather.accept(&misshapen),
            Err(GatherError::SegmentShape { id: 0, .. })
        ));

        // Duplicate (overlapping) tile.
        gather.accept(&segments[0]).unwrap();
        assert_eq!(
            gather.accept(&segments[0]),
            Err(GatherError::DuplicateTile { id: 0 })
        );

        // Incomplete finish names the first missing id.
        assert_eq!(gather.received(), 1);
        assert_eq!(gather.missing_ids().first(), Some(&1));
        assert!(matches!(
            gather.finish(),
            Err(GatherError::Incomplete {
                received: 1,
                first_missing: 1,
                ..
            })
        ));
    }

    #[test]
    fn seeded_gather_demands_exactly_the_frontier() {
        let (old_n, n, k, tile) = (7usize, 11usize, 6usize, 3usize);
        let data = rows(n, k);
        let debias = vec![0.125; n];

        // The "previous" matrix over the first old_n rows.
        let old = dp_core::pairwise_sq_distances_rows(
            old_n,
            |i| data[i].as_slice(),
            &debias[..old_n],
            &Parallelism::sequential(),
        );

        let plan = TilePlan::new(n, tile);
        let mut gather = Gather::seeded(plan, old_n, old.as_flat());
        let frontier: Vec<u64> = plan
            .tiles_touching_rows(old_n..n)
            .into_iter()
            .map(|id| id as u64)
            .collect();
        assert_eq!(gather.missing_ids(), frontier, "missing ≠ frontier");
        assert!(frontier.len() < plan.tile_count(), "seeding placed nothing");

        // Executing only the frontier completes the gather…
        let segments = execute_tiles(
            &plan,
            &frontier,
            |i| data[i].as_slice(),
            &debias,
            &Parallelism::sequential(),
        );
        for s in &segments {
            gather.accept(s).unwrap();
        }
        // …to a matrix bit-identical to a cold full computation.
        let reference = dp_core::pairwise_sq_distances_rows(
            n,
            |i| data[i].as_slice(),
            &debias,
            &Parallelism::sequential(),
        );
        let got = gather.finish().unwrap();
        for (a, b) in reference.as_flat().iter().zip(got.as_flat()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn seeded_from_zero_rows_is_a_cold_gather() {
        let plan = TilePlan::new(6, 2);
        let gather = Gather::seeded(plan, 0, &[]);
        assert_eq!(gather.received(), 0);
        assert_eq!(gather.missing_ids().len(), plan.tile_count());
    }

    #[test]
    #[should_panic(expected = "seed matrix is not")]
    fn seeded_rejects_a_misshapen_seed() {
        let _ = Gather::seeded(TilePlan::new(6, 2), 3, &[0.0; 4]);
    }

    #[test]
    fn empty_plan_gathers_an_empty_matrix() {
        let gather = Gather::new(TilePlan::new(0, 8));
        assert!(gather.is_complete());
        assert_eq!(gather.finish().unwrap().n(), 0);
    }

    #[test]
    fn errors_leave_the_gather_usable() {
        let n = 5;
        let data = rows(n, 4);
        let debias = vec![0.0; n];
        let plan = TilePlan::new(n, 2);
        let segments = segments_for(&plan, &data, &debias);
        let mut gather = Gather::new(plan);
        for s in &segments[..2] {
            gather.accept(s).unwrap();
        }
        // A rejected duplicate must not disturb the placed segments.
        assert!(gather.accept(&segments[1]).is_err());
        for s in &segments[2..] {
            gather.accept(s).unwrap();
        }
        let got = gather.finish().unwrap();
        let reference = dp_core::pairwise_sq_distances_rows(
            n,
            |i| data[i].as_slice(),
            &debias,
            &Parallelism::sequential(),
        );
        for (a, b) in reference.as_flat().iter().zip(got.as_flat()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
