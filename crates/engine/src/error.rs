//! Typed failures of the store and query layer.

use dp_core::error::CoreError;
use std::fmt;

/// Errors raised when ingesting into or querying a
/// [`crate::SketchStore`].
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The spec could not build a sketcher, or a wire payload failed to
    /// decode (carries the underlying core error).
    Core(CoreError),
    /// A release's sketch does not combine with the store (wrong tag,
    /// dimension, or noise moment outside the batch tolerance).
    Incompatible {
        /// The offending party id.
        party_id: u64,
        /// What mismatched.
        detail: String,
    },
    /// A release's party id is already present in the store.
    DuplicateParty(u64),
    /// A queried party id has never been ingested.
    UnknownParty(u64),
    /// The store is empty and the query needs at least one row.
    Empty,
    /// A tile plan's matrix side does not match the store's row count
    /// (e.g. a worker that missed an ingest broadcast).
    PlanMismatch {
        /// Rows the store actually holds.
        store_rows: usize,
        /// Rows the plan claims.
        plan_rows: usize,
    },
    /// A requested tile id is outside the plan.
    UnknownTile {
        /// The offending id.
        id: u64,
        /// The plan's tile count (valid ids are `0..tile_count`).
        tile_count: u64,
    },
    /// A proposed spec matches the served spec in everything except the
    /// kernel version — the peer is on the right store but the wrong
    /// kernel build (protocol `ERR_KERNEL`).
    KernelMismatch {
        /// The kernel the store serves (`KernelId::name()` form).
        served: String,
        /// The kernel the peer proposed.
        proposed: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Core(e) => write!(f, "{e}"),
            Self::Incompatible { party_id, detail } => {
                write!(f, "release from party {party_id} is incompatible: {detail}")
            }
            Self::DuplicateParty(id) => write!(f, "party {id} already ingested"),
            Self::UnknownParty(id) => write!(f, "party {id} not in the store"),
            Self::Empty => write!(f, "the store holds no sketches"),
            Self::PlanMismatch {
                store_rows,
                plan_rows,
            } => write!(
                f,
                "tile plan over {plan_rows} rows, store holds {store_rows}"
            ),
            Self::UnknownTile { id, tile_count } => {
                write!(f, "tile id {id} outside the plan ({tile_count} tiles)")
            }
            Self::KernelMismatch { served, proposed } => {
                write!(
                    f,
                    "kernel mismatch: store serves {served}, peer proposed {proposed}"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

/// Lossy mapping back onto the core error vocabulary, for the legacy
/// slice-based wrappers whose signatures predate the engine.
impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Core(c) => c,
            EngineError::Incompatible { detail, .. } => Self::IncompatibleSketches(detail),
            EngineError::DuplicateParty(id) => Self::Wire(format!("party {id} already ingested")),
            EngineError::UnknownParty(id) => Self::Wire(format!("party {id} not in the store")),
            EngineError::Empty => Self::Wire("the store holds no sketches".to_string()),
            plan @ (EngineError::PlanMismatch { .. }
            | EngineError::UnknownTile { .. }
            | EngineError::KernelMismatch { .. }) => Self::Wire(plan.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = EngineError::DuplicateParty(7);
        assert!(e.to_string().contains('7'));
        let c: CoreError = EngineError::Incompatible {
            party_id: 1,
            detail: "tag".to_string(),
        }
        .into();
        assert!(matches!(c, CoreError::IncompatibleSketches(_)));
        let back: EngineError = CoreError::MissingField("delta").into();
        assert!(matches!(back, EngineError::Core(_)));
        assert!(std::error::Error::source(&back).is_some());
        assert!(std::error::Error::source(&EngineError::Empty).is_none());
    }
}
