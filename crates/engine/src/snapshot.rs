//! Snapshot-isolated, lock-free reads over a shared [`QueryEngine`].
//!
//! The server's original concurrency story was one `Mutex<QueryEngine>`
//! around *everything*: a slow full-matrix query stalled every point
//! query behind it. But the workload is overwhelmingly read-dominated —
//! every query is post-processing of already-released sketches, costs
//! no privacy budget, and mutates nothing — so reads should scale with
//! cores while only ingest serializes.
//!
//! [`SharedEngine`] splits the two worlds:
//!
//! * **Mutations** ([`SharedEngine::mutate`]) lock the engine, run, and
//!   — iff the engine's [`QueryEngine::generation`] moved — **publish**
//!   a fresh immutable [`EngineSnapshot`]: a clone of the store (flat
//!   arenas copied, interned tags shared), the memoized all-pairs
//!   matrix when warm, and the hoisted debias constants, stamped with a
//!   monotonically increasing *epoch*.
//! * **Reads** run against a published snapshot. The hot path
//!   ([`SharedEngine::refresh`]) is one atomic epoch load: when the
//!   caller's cached `Arc<EngineSnapshot>` is still current, no lock is
//!   touched at all; only on an epoch change does the reader take a
//!   brief lock to clone the new `Arc` (a pointer copy, never a data
//!   copy).
//!
//! A snapshot is immutable forever: readers holding an old epoch keep
//! computing against it unharmed while newer epochs are published — the
//! "no torn reads" contract the concurrent chaos suite asserts is that
//! every answer equals the answer of *some* published snapshot.
//!
//! ## Determinism
//!
//! Every snapshot query delegates to the same free functions as the
//! locked [`QueryEngine`] surface (`knn_over`, `subset_pairwise`, …),
//! so the two paths are bit-identical by construction, for any
//! interleaving of reads and publishes.

use crate::engine::{
    execute_tiles_over, knn_over, pair_rows_over, resolve_rows, subset_pairwise, top_pairs_over,
    validate_tiles_over, Neighbor, QueryEngine,
};
use crate::error::EngineError;
use crate::store::SketchStore;
use dp_core::sketcher::effective_plan;
use dp_core::{PairwiseDistances, Parallelism, TilePlan, TileSegment};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// An immutable point-in-time view of a [`QueryEngine`]: the store's
/// rows, the memoized all-pairs matrix when it was warm at publish
/// time, and the hoisted debias constants. Every query on a snapshot
/// is pure — no lock, no interior mutability — so any number of
/// readers run concurrently with each other and with ingest.
#[derive(Debug)]
pub struct EngineSnapshot {
    store: SketchStore,
    /// The full-matrix memo, present iff the engine's incremental
    /// cache covered every row when this snapshot was published.
    matrix: Option<Arc<PairwiseDistances>>,
    epoch: u64,
    generation: u64,
    par: Parallelism,
}

impl EngineSnapshot {
    fn of(engine: &QueryEngine, epoch: u64) -> Self {
        Self {
            store: engine.store().clone(),
            matrix: engine.cached_matrix(),
            epoch,
            generation: engine.generation(),
            par: engine.parallelism(),
        }
    }

    /// The publish epoch: strictly increasing across published
    /// snapshots of one [`SharedEngine`].
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine generation this snapshot was built from.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The snapshot's store view.
    #[must_use]
    pub fn store(&self) -> &SketchStore {
        &self.store
    }

    /// Number of rows in this snapshot.
    #[must_use]
    pub fn n(&self) -> usize {
        self.store.n()
    }

    /// The full all-pairs matrix, when the memo was warm at publish
    /// time. `None` means the cache was stale — the caller must fall
    /// back to the mutation path to fill it (which publishes a new
    /// snapshot carrying the matrix).
    #[must_use]
    pub fn full_matrix(&self) -> Option<Arc<PairwiseDistances>> {
        self.matrix.as_ref().map(Arc::clone)
    }

    /// The debiased squared-distance estimate between two parties —
    /// bit-identical to [`QueryEngine::pair`].
    ///
    /// # Errors
    /// [`EngineError::UnknownParty`] if either id was never ingested.
    pub fn pair(&self, a: u64, b: u64) -> Result<f64, EngineError> {
        let i = self.store.row_of(a).ok_or(EngineError::UnknownParty(a))?;
        let j = self.store.row_of(b).ok_or(EngineError::UnknownParty(b))?;
        Ok(pair_rows_over(&self.store, i, j, self.par.kernel()))
    }

    /// Subset pairwise in the caller's order — slices the memo when
    /// provably bit-identical, else recomputes via the tiled kernel
    /// (same gates and same kernel as [`QueryEngine::pairwise`]).
    ///
    /// # Errors
    /// [`EngineError::UnknownParty`] on an unknown id.
    pub fn pairwise(&self, parties: &[u64]) -> Result<PairwiseDistances, EngineError> {
        let rows = resolve_rows(&self.store, parties)?;
        Ok(subset_pairwise(
            &self.store,
            &rows,
            self.matrix.as_deref(),
            &self.par,
        ))
    }

    /// The `k` nearest parties — bit-identical to [`QueryEngine::knn`].
    ///
    /// # Errors
    /// [`EngineError::UnknownParty`] if the id was never ingested.
    pub fn knn(&self, party: u64, k: usize) -> Result<Vec<Neighbor>, EngineError> {
        let row = self
            .store
            .row_of(party)
            .ok_or(EngineError::UnknownParty(party))?;
        Ok(knn_over(&self.store, row, k, self.par.kernel()))
    }

    /// The `t` globally closest pairs, when the matrix memo is present
    /// (`None` signals the stale-cache fallback, exactly like
    /// [`EngineSnapshot::full_matrix`]).
    #[must_use]
    pub fn top_pairs(&self, t: usize) -> Option<Vec<(u64, u64, f64)>> {
        self.matrix
            .as_deref()
            .map(|matrix| top_pairs_over(&self.store, matrix, t))
    }

    /// The [`TilePlan`] a cold all-pairs pass over this snapshot
    /// executes — same geometry as [`QueryEngine::pairwise_plan`].
    #[must_use]
    pub fn pairwise_plan(&self) -> TilePlan {
        effective_plan(self.store.n(), &self.par)
    }

    /// Validate a remote tile plan against this snapshot's rows —
    /// see [`QueryEngine::validate_tiles`].
    ///
    /// # Errors
    /// [`EngineError::PlanMismatch`] / [`EngineError::UnknownTile`].
    pub fn validate_tiles(
        &self,
        plan_rows: usize,
        tile: usize,
        ids: &[u64],
    ) -> Result<TilePlan, EngineError> {
        validate_tiles_over(&self.store, plan_rows, tile, ids)
    }

    /// Execute plan tiles against this snapshot — bit-identical to
    /// [`QueryEngine::execute_tiles`], and safe to run tile-by-tile
    /// over a long stream: the snapshot cannot change underneath the
    /// stream, so a streamed answer is internally consistent by
    /// construction.
    ///
    /// # Errors
    /// As [`EngineSnapshot::validate_tiles`].
    pub fn execute_tiles(
        &self,
        plan_rows: usize,
        tile: usize,
        ids: &[u64],
    ) -> Result<Vec<TileSegment>, EngineError> {
        let plan = self.validate_tiles(plan_rows, tile, ids)?;
        Ok(execute_tiles_over(&self.store, &plan, ids, &self.par))
    }

    /// Execute one tile of an **already validated** plan.
    #[must_use]
    pub fn execute_tile(&self, plan: &TilePlan, id: u64) -> Vec<TileSegment> {
        execute_tiles_over(&self.store, plan, &[id], &self.par)
    }
}

/// A [`QueryEngine`] shared between one serialized mutation path and
/// any number of lock-free readers, via published [`EngineSnapshot`]s.
/// See the module docs for the protocol.
#[derive(Debug)]
pub struct SharedEngine {
    /// The epoch of the latest published snapshot. Readers compare
    /// this (one `Acquire` load) against their cached snapshot's epoch;
    /// the snapshot is stored into `current` *before* the epoch is
    /// bumped (`Release`), so a reader observing the new epoch always
    /// finds a snapshot at least that new under the lock.
    epoch: AtomicU64,
    /// The latest published snapshot. Locked only to swap or clone the
    /// `Arc` — never while computing anything.
    current: Mutex<Arc<EngineSnapshot>>,
    /// The single mutable engine. Lock order: `engine` before
    /// `current` (publish happens under both).
    engine: Mutex<QueryEngine>,
}

/// Recover a poisoned lock: both guarded values uphold their
/// invariants across panics (the store is append-only and validates
/// before mutating; the snapshot slot holds a complete `Arc` or the
/// previous one), mirroring the server's poison-recovery discipline.
fn recover<T>(result: Result<T, PoisonError<T>>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

impl SharedEngine {
    /// Wrap an engine, publishing its current state as epoch 1.
    #[must_use]
    pub fn new(engine: QueryEngine) -> Self {
        let first = Arc::new(EngineSnapshot::of(&engine, 1));
        Self {
            epoch: AtomicU64::new(1),
            current: Mutex::new(first),
            engine: Mutex::new(engine),
        }
    }

    /// The epoch of the latest published snapshot (one atomic load).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The latest published snapshot (brief lock, clones the `Arc`).
    #[must_use]
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        let current = recover(self.current.lock());
        Arc::clone(&current)
    }

    /// The hot-path read: keep `cached` current. When the epoch hasn't
    /// moved since `cached` was published this is **one atomic load and
    /// no lock**; on an epoch change the new snapshot is cloned out
    /// under the brief `current` lock.
    pub fn refresh(&self, cached: &mut Arc<EngineSnapshot>) {
        if cached.epoch() != self.epoch.load(Ordering::Acquire) {
            *cached = self.snapshot();
        }
    }

    /// Run a mutation under the engine lock, then publish a fresh
    /// snapshot iff the engine's generation moved (a failed ingest
    /// publishes nothing). Returns `f`'s result.
    ///
    /// This is the **only** writer of the epoch, so epochs increase
    /// strictly and a snapshot's `(epoch, generation)` pair is unique.
    pub fn mutate<T>(&self, f: impl FnOnce(&mut QueryEngine) -> T) -> T {
        let mut engine = recover(self.engine.lock());
        let out = f(&mut engine);
        let generation = engine.generation();
        let mut current = recover(self.current.lock());
        if current.generation() != generation {
            let epoch = self.epoch.load(Ordering::Relaxed) + 1;
            *current = Arc::new(EngineSnapshot::of(&engine, epoch));
            self.epoch.store(epoch, Ordering::Release);
        }
        out
    }

    /// Consume the shared engine, returning the inner [`QueryEngine`].
    ///
    /// # Panics
    /// If a lock is held elsewhere (callers tear down after readers).
    #[must_use]
    pub fn into_engine(self) -> QueryEngine {
        recover(self.engine.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_core::config::SketchConfig;
    use dp_core::release::Release;
    use dp_core::sketcher::{Construction, PrivateSketcher, SketcherSpec};
    use dp_hashing::Seed;

    fn spec(d: usize) -> SketcherSpec {
        let config = SketchConfig::builder()
            .input_dim(d)
            .alpha(0.3)
            .beta(0.1)
            .epsilon(1.5)
            .build()
            .unwrap();
        SketcherSpec::new(Construction::SjltAuto, config, Seed::new(7))
    }

    fn releases(n: usize, d: usize) -> Vec<Release> {
        let sk = spec(d).build().unwrap();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..d).map(|j| ((i * d + j) % 7) as f64 - 3.0).collect())
            .collect();
        sk.sketch_batch(&rows, Seed::new(500))
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(i, sketch)| Release {
                party_id: 100 + i as u64,
                sketch,
            })
            .collect()
    }

    #[test]
    fn publish_on_ingest_only() {
        let shared = SharedEngine::new(QueryEngine::default());
        assert_eq!(shared.epoch(), 1);
        let rels = releases(3, 12);
        shared.mutate(|e| e.ingest(&rels[0]).unwrap());
        assert_eq!(shared.epoch(), 2);
        // A failed mutation (duplicate party) publishes nothing.
        shared.mutate(|e| assert!(e.ingest(&rels[0]).is_err()));
        assert_eq!(shared.epoch(), 2);
        // A pure read inside mutate publishes nothing either.
        shared.mutate(|e| {
            let _ = e.pair(100, 100);
        });
        assert_eq!(shared.epoch(), 2);
    }

    #[test]
    fn old_snapshots_survive_new_publishes() {
        let shared = SharedEngine::new(QueryEngine::default());
        let rels = releases(4, 12);
        for r in &rels[..2] {
            shared.mutate(|e| e.ingest(r).unwrap());
        }
        let old = shared.snapshot();
        assert_eq!(old.n(), 2);
        let before = old.pair(100, 101).unwrap();
        for r in &rels[2..] {
            shared.mutate(|e| e.ingest(r).unwrap());
        }
        assert_eq!(shared.snapshot().n(), 4);
        // The old view is frozen: same rows, bitwise-same answer.
        assert_eq!(old.n(), 2);
        assert_eq!(old.pair(100, 101).unwrap().to_bits(), before.to_bits());
    }

    #[test]
    fn refresh_is_a_noop_on_an_unchanged_epoch() {
        let shared = SharedEngine::new(QueryEngine::default());
        let rels = releases(2, 12);
        shared.mutate(|e| e.ingest(&rels[0]).unwrap());
        let mut cached = shared.snapshot();
        let ptr = Arc::as_ptr(&cached);
        shared.refresh(&mut cached);
        assert_eq!(Arc::as_ptr(&cached), ptr, "no republish, same Arc");
        shared.mutate(|e| e.ingest(&rels[1]).unwrap());
        shared.refresh(&mut cached);
        assert_ne!(Arc::as_ptr(&cached), ptr);
        assert_eq!(cached.n(), 2);
    }

    #[test]
    fn snapshot_queries_match_engine_queries_bitwise() {
        let shared = SharedEngine::new(QueryEngine::default());
        let rels = releases(6, 16);
        for r in &rels {
            shared.mutate(|e| e.ingest(r).unwrap());
        }
        // Warm the memo through the mutation path; the publish carries
        // the matrix into the next snapshot.
        let full = shared.mutate(|e| e.pairwise_all());
        let snap = shared.snapshot();
        let snap_full = snap.full_matrix().expect("memo published");
        assert_eq!(snap_full.as_flat(), full.as_flat());
        let engine_knn = shared.mutate(|e| e.knn(102, 3).unwrap());
        let snap_knn = snap.knn(102, 3).unwrap();
        assert_eq!(engine_knn.len(), snap_knn.len());
        for (a, b) in engine_knn.iter().zip(&snap_knn) {
            assert_eq!(a.party_id, b.party_id);
            assert_eq!(
                a.estimated_sq_distance.to_bits(),
                b.estimated_sq_distance.to_bits()
            );
        }
        let ids = [104u64, 100, 103];
        let engine_sub = shared.mutate(|e| e.pairwise(&ids).unwrap());
        let snap_sub = snap.pairwise(&ids).unwrap();
        assert_eq!(engine_sub.as_flat(), snap_sub.as_flat());
        let engine_top = shared.mutate(|e| e.top_pairs(4));
        let snap_top = snap.top_pairs(4).expect("memo published");
        assert_eq!(engine_top, snap_top);
        // Tile execution over the snapshot matches the engine's.
        let plan = snap.pairwise_plan();
        let ids: Vec<u64> = (0..plan.tile_count() as u64).collect();
        let engine_tiles = shared.mutate(|e| e.execute_tiles(plan.n(), plan.tile(), &ids).unwrap());
        let snap_tiles = snap.execute_tiles(plan.n(), plan.tile(), &ids).unwrap();
        assert_eq!(engine_tiles, snap_tiles);
    }

    #[test]
    fn stale_memo_not_published() {
        let shared = SharedEngine::new(QueryEngine::default());
        let rels = releases(3, 12);
        for r in &rels[..2] {
            shared.mutate(|e| e.ingest(r).unwrap());
        }
        shared.mutate(|e| {
            let _ = e.pairwise_all();
        });
        assert!(shared.snapshot().full_matrix().is_some());
        // New row: the memo is stale again, so the fresh snapshot must
        // not carry a matrix that is missing the row.
        shared.mutate(|e| e.ingest(&rels[2]).unwrap());
        let snap = shared.snapshot();
        assert_eq!(snap.n(), 3);
        assert!(snap.full_matrix().is_none());
        assert!(snap.top_pairs(1).is_none());
    }

    #[test]
    fn concurrent_readers_and_writer_smoke() {
        let shared = SharedEngine::new(QueryEngine::default());
        let rels = releases(8, 12);
        shared.mutate(|e| e.ingest(&rels[0]).unwrap());
        shared.mutate(|e| e.ingest(&rels[1]).unwrap());
        std::thread::scope(|scope| {
            let shared = &shared;
            let rels = &rels;
            scope.spawn(move || {
                for r in &rels[2..] {
                    shared.mutate(|e| e.ingest(r).unwrap());
                }
            });
            for _ in 0..3 {
                scope.spawn(move || {
                    let mut cached = shared.snapshot();
                    for _ in 0..200 {
                        shared.refresh(&mut cached);
                        // Any published snapshot answers coherently:
                        // the first two rows are always present.
                        let d = cached.pair(100, 101).unwrap();
                        assert!(d.is_finite());
                        assert!(cached.n() >= 2 && cached.n() <= 8);
                    }
                });
            }
        });
        assert_eq!(shared.snapshot().n(), 8);
    }
}
