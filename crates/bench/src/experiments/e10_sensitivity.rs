//! E10 — sensitivity structure (Note 1, §2.1.1, §6.2.3).
//!
//! * i.i.d. Gaussian `P`: `P[∆₂ > 2] ≤ δ′` whenever
//!   `k > 2 ln d + 2 ln(1/δ′)` (Note 1) — we measure the exceedance
//!   frequency across seeds at a `k` chosen for δ′ = 0.01 and at a small
//!   `k` where exceedance is common;
//! * the initialization scan is `O(dk)` — measured construction-time
//!   slope in `d·k`;
//! * SJLT: `∆₁ = √s` and `∆₂ = 1` **exactly**, across every seed
//!   (verified against materialized matrices).

use crate::experiments::scaled;
use crate::runner::{mc_summary, time_per_op, CheckList};
use dp_core::variance::gaussian_sigma;
use dp_hashing::Seed;
use dp_stats::{loglog_slope, Table};
use dp_transforms::gaussian_iid::GaussianIid;
use dp_transforms::sjlt::Sjlt;
use dp_transforms::{materialize, LinearTransform};

/// Run the experiment; returns overall pass.
pub fn run(scale: f64) -> bool {
    println!("== E10: sensitivity distributions and the init cost ==");
    let mut checks = CheckList::new();
    let seeds = scaled(300, scale);

    // --- Gaussian iid: P[∆₂ > 2] at the Note 1 k. ---
    let d = 256;
    let k_safe = GaussianIid::k_for_sensitivity_bound(d, 0.01);
    let exceed_safe = mc_summary(seeds, |rep| {
        let t = GaussianIid::new(d, k_safe, Seed::new(rep)).expect("iid");
        f64::from(u8::from(t.l2_sensitivity() > 2.0))
    });
    println!(
        "d = {d}, k = {k_safe} (Note 1 for delta' = 0.01): P[Delta2 > 2] measured {:.4}",
        exceed_safe.mean()
    );
    checks.check(
        &format!(
            "Note 1 bound holds: measured {:.4} <= delta' = 0.01 (+MC slack)",
            exceed_safe.mean()
        ),
        exceed_safe.mean() <= 0.01 + 3.0 * (0.01f64 / seeds as f64).sqrt(),
    );

    // At k far below the bound, ∆₂ routinely exceeds even modest levels.
    let k_tiny = 4;
    let exceed_tiny = mc_summary(seeds, |rep| {
        let t = GaussianIid::new(d, k_tiny, Seed::new(rep)).expect("iid");
        f64::from(u8::from(t.l2_sensitivity() > 2.0))
    });
    println!(
        "k = {k_tiny}: P[Delta2 > 2] measured {:.3}",
        exceed_tiny.mean()
    );
    checks.check(
        "small k makes high sensitivity common (the Kenthapadi risk)",
        exceed_tiny.mean() > 0.2,
    );

    // The induced σ penalty: calibrating to the realized ∆₂ costs extra
    // noise exactly when ∆₂ > 1.
    let sigma_ratio = mc_summary(seeds.min(100), |rep| {
        let t = GaussianIid::new(d, k_safe, Seed::new(rep)).expect("iid");
        gaussian_sigma(t.l2_sensitivity(), 1.0, 1e-6) / gaussian_sigma(1.0, 1.0, 1e-6)
    });
    println!(
        "sigma(realized Delta2)/sigma(Delta2=1): mean {:.3}, max {:.3}",
        sigma_ratio.mean(),
        sigma_ratio.max()
    );
    checks.check(
        "exact calibration pays a real sigma premium over the unit assumption",
        sigma_ratio.mean() > 1.0,
    );

    // --- Init cost: construction time ~ d·k. ---
    let sizes = [(256usize, 64usize), (1024, 128), (4096, 256)];
    let mut table = Table::new(vec!["d", "k", "d*k", "construct ns"]);
    let (mut dk, mut tns) = (Vec::new(), Vec::new());
    for &(d, k) in &sizes {
        let t = time_per_op(3, || {
            let _ = GaussianIid::new(d, k, Seed::new(1)).expect("iid");
        });
        table.row(vec![
            d.to_string(),
            k.to_string(),
            (d * k).to_string(),
            format!("{t:.0}"),
        ]);
        dk.push((d * k) as f64);
        tns.push(t);
    }
    println!("{table}");
    let slope = loglog_slope(&dk, &tns);
    println!("construction-time slope in d*k: {slope:.2}");
    checks.check(
        &format!(
            "iid construction (incl. sensitivity scan) ~ O(dk) (slope {slope:.2} in [0.7, 1.3])"
        ),
        (0.7..=1.3).contains(&slope),
    );

    // --- SJLT: a-priori sensitivities exact for every seed. ---
    let mut all_exact = true;
    for rep in 0..seeds.min(60) {
        let t = Sjlt::new(96, 24, 4, 6, Seed::new(rep)).expect("sjlt");
        let m = materialize(&t).expect("materialize");
        let ok1 = (m.l1_sensitivity() - 2.0).abs() < 1e-12; // √4
        let ok2 = (m.l2_sensitivity() - 1.0).abs() < 1e-12;
        all_exact &= ok1 && ok2;
    }
    checks.check(
        "SJLT sensitivities are exactly (sqrt(s), 1) for every seed — no init scan needed",
        all_exact,
    );

    checks.finish("E10")
}
