//! E9 — the §6.2.1 optimal projection dimension.
//!
//! The total variance trades `2‖z‖⁴/k` (shrinks with k) against
//! `2k(E[η⁴]+E[η²]²)` (grows with k), so it is U-shaped in `k` with
//! minimizer `k* = ‖z‖²/√(E[η⁴]+E[η²]²)` — for `Lap(√s/ε)` noise,
//! `k* = ‖z‖²·ε²/(√28·s)`, i.e. the paper's `k = Θ(ν·ε²/∆₁²)`. We sweep
//! `k`, measure the variance empirically, and check (a) the U-shape,
//! (b) the empirical argmin within a small factor of `k*`.

use crate::experiments::scaled;
use crate::runner::{mc_summary_par, CheckList};
use crate::workload::pair_at_distance;
use dp_core::framework::GenSketcher;
use dp_core::variance::var_sjlt_laplace;
use dp_core::Parallelism;
use dp_hashing::Seed;
use dp_linalg::vector::{l4_norm, sq_distance};
use dp_noise::mechanism::LaplaceMechanism;
use dp_stats::table::fmt_g;
use dp_stats::Table;
use dp_transforms::sjlt::Sjlt;

/// Run the experiment; returns overall pass.
pub fn run(scale: f64) -> bool {
    println!("== E9: optimal projection dimension k* ==");
    let mut checks = CheckList::new();
    let d = 128;
    let s = 4usize;
    let eps = 4.0;
    // Large distance so the optimum sits inside the sweep range.
    let (x, y) = pair_at_distance(d, 400.0, Seed::new(0xE9));
    let dist_sq = sq_distance(&x, &y);
    let z: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a - b).collect();
    let l4 = l4_norm(&z);
    let reps = scaled(2000, scale);
    // Reps are independent MC draws seeded by their rep index, so the
    // sweep runs on the env-driven Parallelism knob (DP_THREADS);
    // mc_summary_par is bit-identical to the sequential pass.
    let par = Parallelism::from_env();
    println!("MC workers: {}", par.threads());

    // Theory: k* = ‖z‖²/√(E[η⁴]+E[η²]²), Laplace(√s/ε) moments.
    let b2 = s as f64 / (eps * eps);
    let k_star = dist_sq / (24.0 * b2 * b2 + 4.0 * b2 * b2).sqrt();
    println!("theory: k* = {k_star:.1} (dist² = {dist_sq:.1}, s = {s}, eps = {eps})");

    let ks: Vec<usize> = (0..10).map(|i| s << i).collect(); // 4..2048
    let mut table = Table::new(vec!["k", "predicted var", "empirical var"]);
    let mut emp = Vec::new();
    let mut pred = Vec::new();
    for &k in &ks {
        let p = var_sjlt_laplace(k, s, eps, dist_sq, l4);
        let summary = mc_summary_par(reps, &par, |rep| {
            let t = Sjlt::new(d, k, s, 6, Seed::new(rep)).expect("sjlt");
            let m = LaplaceMechanism::new((s as f64).sqrt(), eps).expect("mech");
            let g = GenSketcher::new(t, m, "e9");
            let a = g.sketch(&x, Seed::new(31_000_000 + rep)).expect("sketch");
            let b = g.sketch(&y, Seed::new(32_000_000 + rep)).expect("sketch");
            g.estimate_sq_distance(&a, &b).expect("estimate")
        });
        table.row(vec![k.to_string(), fmt_g(p), fmt_g(summary.variance())]);
        emp.push(summary.variance());
        pred.push(p);
    }
    println!("{table}");

    // U-shape on the predictions: strictly decreasing then increasing.
    let pred_min_idx = pred
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("nonempty")
        .0;
    checks.check(
        "predicted variance is U-shaped (interior minimum)",
        pred_min_idx > 0 && pred_min_idx < ks.len() - 1,
    );
    let k_pred_min = ks[pred_min_idx] as f64;
    checks.check(
        &format!(
            "predicted argmin k = {k_pred_min} within the k grid factor 2 of k* = {k_star:.0}"
        ),
        k_pred_min / k_star < 2.0 && k_star / k_pred_min < 2.0,
    );

    // Empirical argmin within factor 4 of k* (MC noise on a flat basin).
    let emp_min_idx = emp
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("nonempty")
        .0;
    let k_emp_min = ks[emp_min_idx] as f64;
    println!("empirical argmin k = {k_emp_min}, theory k* = {k_star:.1}");
    checks.check(
        &format!("empirical argmin {k_emp_min} within factor 4 of k* {k_star:.0}"),
        k_emp_min / k_star < 4.0 && k_star / k_emp_min < 4.0,
    );

    // The two tails must rise: variance at extreme ks above the minimum.
    checks.check(
        "variance rises on both sides of the optimum (empirical)",
        emp[0] > emp[emp_min_idx] && emp[ks.len() - 1] > emp[emp_min_idx],
    );

    checks.finish("E9")
}
