//! E7 — empirical privacy-loss audit (Lemmas 1–2, Theorem 3 item 3).
//!
//! On the worst-case neighboring pair `x′ = x + e_j` we sample releases
//! and compute the exact privacy-loss random variable (the noise
//! densities are known). Gates:
//!
//! * SJLT + Laplace: the loss is **surely** ≤ ε (pure DP) — max over all
//!   samples must not exceed ε;
//! * SJLT/iid + Gaussian: `P[loss > ε]` must match the analytic tail and
//!   stay ≤ δ;
//! * the unsound `AssumedUnit` calibration (§2.1.1's criticism): its loss
//!   tail, computed analytically from the realized ∆₂, exceeds δ whenever
//!   `∆₂ > 1` — we report how often that happens across seeds.

use crate::experiments::scaled;
use crate::runner::{mc_summary, CheckList};
use crate::workload::neighboring_pair;
use dp_core::config::SketchConfig;
use dp_core::kenthapadi::{Kenthapadi, SigmaCalibration};
use dp_core::sjlt_private::PrivateSjlt;
use dp_hashing::Seed;
use dp_noise::gaussian::Gaussian;
use dp_noise::laplace::Laplace;
use dp_stats::audit::{gaussian_loss_tail, LossAudit};
use dp_transforms::LinearTransform;

/// Run the experiment; returns overall pass.
pub fn run(scale: f64) -> bool {
    println!("== E7: privacy-loss audit on worst-case neighbors ==");
    let mut checks = CheckList::new();
    let d = 64;
    let eps = 0.8;
    let delta = 1e-4;
    let trials = scaled(60_000, scale);
    let (x, xp) = neighboring_pair(d, 7, Seed::new(0xE7));

    // --- SJLT + Laplace: pure ε-DP, loss surely ≤ ε. ---
    let cfg_pure = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.25)
        .beta(0.05)
        .epsilon(eps)
        .build()
        .expect("config");
    let sk = PrivateSjlt::with_laplace(&cfg_pure, Seed::new(1)).expect("sjlt");
    let t = sk.general().transform();
    let (sx, sxp) = (t.apply(&x).expect("apply"), t.apply(&xp).expect("apply"));
    let b = (sk.s() as f64).sqrt() / eps; // Lap scale ∆₁/ε
    let lap = Laplace::new(b).expect("scale");
    let mut audit = LossAudit::new();
    let mut rng = Seed::new(0xA1).rng();
    let mut out = vec![0.0; sx.len()];
    for _ in 0..trials {
        for (o, &v) in out.iter_mut().zip(&sx) {
            *o = v + lap.sample(&mut rng);
        }
        audit.push_output(&out, &sx, &sxp, |v| lap.ln_pdf(v));
    }
    println!(
        "sjlt+laplace: max loss {:.4} (eps = {eps}), P[loss > eps] = {:.1e}",
        audit.max_loss(),
        audit.fraction_exceeding(eps)
    );
    checks.check(
        &format!("pure DP: max loss {:.4} <= eps {eps}", audit.max_loss()),
        audit.max_loss() <= eps + 1e-9,
    );
    checks.check(
        "pure DP: no sample exceeds eps",
        audit.fraction_exceeding(eps) == 0.0,
    );

    // --- SJLT + Gaussian: tail matches the analytic form and ≤ δ. ---
    let cfg_apx = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.25)
        .beta(0.05)
        .epsilon(eps)
        .delta(delta)
        .build()
        .expect("config");
    let skg = PrivateSjlt::with_gaussian(&cfg_apx, Seed::new(2)).expect("sjlt");
    let tg = skg.general().transform();
    let (gx, gxp) = (tg.apply(&x).expect("apply"), tg.apply(&xp).expect("apply"));
    let sigma = eps.recip() * (2.0 * (1.25f64 / delta).ln()).sqrt(); // ∆₂ = 1
    let gauss = Gaussian::new(sigma).expect("sigma");
    let mut audit_g = LossAudit::new();
    let mut rng = Seed::new(0xA2).rng();
    let mut out = vec![0.0; gx.len()];
    for _ in 0..trials {
        for (o, &v) in out.iter_mut().zip(&gx) {
            *o = v + gauss.sample(&mut rng);
        }
        audit_g.push_output(&out, &gx, &gxp, |v| gauss.ln_pdf(v));
    }
    let diff_norm = dp_linalg::vector::l2_distance(&gx, &gxp);
    let analytic = gaussian_loss_tail(diff_norm, sigma, eps);
    let measured = audit_g.fraction_exceeding(eps);
    println!(
        "sjlt+gaussian: P[loss > eps] measured {measured:.2e}, analytic {analytic:.2e}, delta {delta:.1e} (||S(x-x')|| = {diff_norm:.3})"
    );
    checks.check(
        &format!("approx DP: measured tail {measured:.2e} <= delta {delta:.1e}"),
        measured <= delta * 10.0 + 5.0 / trials as f64, // MC slack on a tiny tail
    );
    checks.check(
        "approx DP: tail within 10x of the analytic value (or both ~ 0)",
        measured <= analytic * 10.0 + 5.0 / trials as f64,
    );

    // --- AssumedUnit calibration: unsound whenever realized ∆₂ > 1. ---
    let unsound_frac = mc_summary(scaled(200, scale), |rep| {
        let b = Kenthapadi::new(&cfg_apx, SigmaCalibration::AssumedUnit, Seed::new(rep))
            .expect("baseline");
        f64::from(u8::from(!b.calibration_is_sound()))
    });
    println!(
        "assumed-unit calibration unsound for {:.1}% of seeds (realized Delta2 > 1)",
        100.0 * unsound_frac.mean()
    );
    checks.check(
        "the Section 2.1.1 criticism is observable: AssumedUnit fails for some seeds",
        unsound_frac.mean() > 0.0,
    );
    // Exact-sensitivity calibration is always sound.
    let sound_frac = mc_summary(scaled(100, scale), |rep| {
        let b = Kenthapadi::new(&cfg_apx, SigmaCalibration::ExactSensitivity, Seed::new(rep))
            .expect("baseline");
        f64::from(u8::from(b.calibration_is_sound()))
    });
    checks.check(
        "exact-sensitivity calibration is always sound",
        (sound_frac.mean() - 1.0).abs() < 1e-12,
    );

    checks.finish("E7")
}
