//! E5 — sketching-time comparison and the §7 Eq. (5) window.
//!
//! Claims reproduced:
//! * SJLT sketches dense input in `O(s·d + k)` → log-log slope ≈ 1 in d;
//! * FJLT sketches in `O(d log d + nnz(P))` → slope slightly above 1;
//! * the i.i.d. dense transform costs `O(k·d)` → slope ≈ 1 but with a
//!   `k×` larger constant, making it the slowest for JL-sized k;
//! * sparse input: SJLT's `O(s·‖x‖₀ + k)` beats all dense paths;
//! * Eq. (5): FJLT is faster than SJLT for
//!   `ln²(1/β)/α < d < e^s` — we check the measured crossover direction
//!   at the window edges that fit in memory.

use crate::runner::{time_per_op, CheckList};
use crate::workload::{gaussian_vec, sparse_vec};
use dp_core::config::SketchConfig;
use dp_core::sketcher::{sketch_batch_par, AnySketcher, Construction};
use dp_core::variance::fjlt_faster_window;
use dp_core::Parallelism;
use dp_hashing::Seed;
use dp_stats::loglog_slope;
use dp_stats::Table;
use dp_transforms::fjlt::Fjlt;
use dp_transforms::gaussian_iid::GaussianIid;
use dp_transforms::sjlt::Sjlt;
use dp_transforms::LinearTransform;

/// Run the experiment; returns overall pass.
pub fn run(scale: f64) -> bool {
    println!("== E5: sketch timing (iid vs FJLT vs SJLT) ==");
    let mut checks = CheckList::new();
    let cfg = SketchConfig::builder()
        .input_dim(1024) // placeholder; d varies below
        .alpha(0.25)
        .beta(0.05)
        .epsilon(1.0)
        .build()
        .expect("config");
    let (k, s, t_indep) = (cfg.k_sjlt(), cfg.s(), cfg.jl().independence());
    println!("k = {k}, s = {s}");
    let (win_lo, win_hi) = fjlt_faster_window(cfg.jl());
    println!("Eq.(5) predicted FJLT-faster window: ({win_lo:.1}, {win_hi:.3e})");

    let iters = |d: usize| -> u32 {
        let base = (2e7 / d as f64).clamp(3.0, 200.0) * scale.max(0.1);
        base as u32
    };

    let ds = [1usize << 10, 1 << 12, 1 << 14, 1 << 16];
    let mut table = Table::new(vec![
        "d",
        "iid ns/op",
        "fjlt ns/op",
        "sjlt(cached) ns/op",
        "sjlt(hashed) ns/op",
        "sjlt-sparse(nnz=64) ns/op",
    ]);
    let (mut t_sjlt, mut t_fjlt, mut t_iid) = (Vec::new(), Vec::new(), Vec::new());
    for &d in &ds {
        let x = gaussian_vec(d, Seed::new(d as u64));
        let xs = sparse_vec(d, 64, Seed::new(d as u64 + 1));
        let sjlt = Sjlt::new_cached(d, k, s, t_indep, Seed::new(7)).expect("sjlt");
        let sjlt_hashed = Sjlt::new(d, k, s, t_indep, Seed::new(7)).expect("sjlt");
        let fjlt = Fjlt::new(d, k, cfg.jl(), Seed::new(7)).expect("fjlt");
        let mut out = vec![0.0; k];
        let ts = time_per_op(iters(d), || {
            sjlt.apply_into(&x, &mut out).expect("apply");
        });
        let tsh = time_per_op(iters(d).min(40), || {
            sjlt_hashed.apply_into(&x, &mut out).expect("apply");
        });
        let tf = time_per_op(iters(d), || {
            fjlt.apply_into(&x, &mut out).expect("apply");
        });
        let tsp = time_per_op(iters(d).saturating_mul(4).max(8), || {
            let _ = sjlt.apply_sparse(&xs).expect("apply");
        });
        // The dense iid transform needs O(dk) memory; cap its sweep.
        let ti = if d <= 1 << 14 {
            let iid = GaussianIid::new(d, k, Seed::new(7)).expect("iid");
            time_per_op(iters(d).min(20), || {
                iid.apply_into(&x, &mut out).expect("apply");
            })
        } else {
            f64::NAN
        };
        table.row(vec![
            d.to_string(),
            if ti.is_nan() {
                "(skipped: O(dk) memory)".to_string()
            } else {
                format!("{ti:.0}")
            },
            format!("{tf:.0}"),
            format!("{ts:.0}"),
            format!("{tsh:.0}"),
            format!("{tsp:.0}"),
        ]);
        t_sjlt.push(ts);
        t_fjlt.push(tf);
        if !ti.is_nan() {
            t_iid.push(ti);
        }
    }
    println!("{table}");

    let dsf: Vec<f64> = ds.iter().map(|&d| d as f64).collect();
    let slope_sjlt = loglog_slope(&dsf, &t_sjlt);
    let slope_fjlt = loglog_slope(&dsf, &t_fjlt);
    let slope_iid = loglog_slope(&dsf[..t_iid.len()], &t_iid);
    println!("log-log slopes in d: sjlt {slope_sjlt:.2}, fjlt {slope_fjlt:.2}, iid {slope_iid:.2}");
    checks.check(
        &format!("sjlt time ~ linear in d (slope {slope_sjlt:.2} in [0.6, 1.35])"),
        (0.6..=1.35).contains(&slope_sjlt),
    );
    checks.check(
        &format!("fjlt time ~ d log d (slope {slope_fjlt:.2} in [0.7, 1.6])"),
        (0.7..=1.6).contains(&slope_fjlt),
    );
    checks.check(
        &format!("iid time ~ linear in d (slope {slope_iid:.2} in [0.6, 1.5])"),
        (0.6..=1.5).contains(&slope_iid),
    );
    // Constant-factor ordering at the largest common d: iid (O(kd)) must
    // be slowest; with s ≪ k the SJLT beats it by roughly k/s.
    checks.check(
        "iid is the slowest dense path at d = 2^14",
        t_iid.last().expect("measured") > t_sjlt.get(2).expect("measured")
            && t_iid.last().expect("measured") > t_fjlt.get(2).expect("measured"),
    );
    // Sparse path: at the largest d, the sparse SJLT apply (nnz = 64)
    // must be much cheaper than the dense SJLT apply.
    checks.check("sjlt sparse path wins for sparse inputs", {
        let d = *ds.last().expect("nonempty");
        let xs = sparse_vec(d, 64, Seed::new(d as u64 + 1));
        let sjlt = Sjlt::new_cached(d, k, s, t_indep, Seed::new(7)).expect("sjlt");
        let x = gaussian_vec(d, Seed::new(d as u64));
        let mut out = vec![0.0; k];
        let tsp = time_per_op(32, || {
            let _ = sjlt.apply_sparse(&xs).expect("apply");
        });
        let ts = time_per_op(4, || {
            sjlt.apply_into(&x, &mut out).expect("apply");
        });
        tsp < ts
    });
    // Eq. (5) direction: inside the window (d = 2^14 < e^s for our s)
    // the FJLT should not be dramatically slower than the SJLT; below the
    // lower edge (d small) the SJLT wins. We check the *trend*: the
    // fjlt/sjlt time ratio must decrease as d grows into the window.
    let ratio_small = t_fjlt[0] / t_sjlt[0];
    let ratio_large = t_fjlt[t_fjlt.len() - 1] / t_sjlt[t_sjlt.len() - 1];
    println!("fjlt/sjlt time ratio: d=2^10 -> {ratio_small:.2}, d=2^16 -> {ratio_large:.2}");
    checks.check(
        "Eq.(5) trend: fjlt/sjlt ratio shrinks as d grows into the window",
        ratio_large < ratio_small,
    );

    // Batch-parallel sketching through the Parallelism knob: the
    // data-parallel sketch_batch must be bit-identical to the sequential
    // reference, and on multi-core hosts it should not lose time.
    let par = Parallelism::from_env();
    println!(
        "-- sketch_batch parallelism: {} worker(s) (DP_THREADS) --",
        par.threads()
    );
    {
        let d = 1 << 12;
        let batch_cfg = SketchConfig::builder()
            .input_dim(d)
            .alpha(0.25)
            .beta(0.05)
            .epsilon(1.0)
            .build()
            .expect("config");
        let sk =
            AnySketcher::new(Construction::SjltAuto, &batch_cfg, Seed::new(7)).expect("sketcher");
        let rows_n = (64.0 * scale.max(0.1)).max(8.0) as usize;
        let rows: Vec<Vec<f64>> = (0..rows_n)
            .map(|r| gaussian_vec(d, Seed::new(4000 + r as u64)))
            .collect();
        let seq =
            sketch_batch_par(&sk, &rows, Seed::new(5), &Parallelism::sequential()).expect("batch");
        let par_batch = sketch_batch_par(&sk, &rows, Seed::new(5), &par).expect("batch");
        checks.check(
            "parallel sketch_batch is bit-identical to sequential",
            seq == par_batch,
        );
        let t_seq = time_per_op(3, || {
            let _ = sketch_batch_par(&sk, &rows, Seed::new(5), &Parallelism::sequential())
                .expect("batch");
        });
        let t_par = time_per_op(3, || {
            let _ = sketch_batch_par(&sk, &rows, Seed::new(5), &par).expect("batch");
        });
        println!(
            "sketch_batch ({rows_n} rows, d = {d}): sequential {:.2e} ns, {} threads {:.2e} ns \
             (speedup {:.2}x)",
            t_seq,
            par.threads(),
            t_par,
            t_seq / t_par
        );
        // The speedup is informational only: a pass/fail wall-clock gate
        // would flake on loaded or oversubscribed hosts. Correctness
        // (bit-identity above) is the gated property; the perf
        // trajectory is tracked by bench_pairwise / BENCH_pairwise.json.
    }

    checks.finish("E5")
}
