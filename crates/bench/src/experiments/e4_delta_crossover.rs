//! E4 — the §7/Note 5 δ-crossover between Laplace and Gaussian noise.
//!
//! The paper: the SJLT-Laplace estimator has lower variance than the
//! Gaussian-noise alternatives exactly when `δ < e^{−Θ(s)}` (for the
//! baseline comparison, `δ < e^{−s} = β^{O(1/α)}`). We sweep δ, print
//! both predicted variances, locate the crossover δ*, verify
//! `ln(1/δ*) = Θ(s)`, and confirm the ordering empirically at one δ on
//! each side.

use crate::experiments::scaled;
use crate::runner::{mc_summary, CheckList};
use crate::workload::pair_at_distance;
use dp_core::config::SketchConfig;
use dp_core::sjlt_private::PrivateSjlt;
use dp_core::variance::{delta_crossover, var_sjlt_gaussian, var_sjlt_laplace};
use dp_hashing::Seed;
use dp_linalg::vector::{l4_norm, sq_distance};
use dp_stats::table::fmt_g;
use dp_stats::Table;

/// Run the experiment; returns overall pass.
pub fn run(scale: f64) -> bool {
    println!("== E4: delta crossover (Laplace vs Gaussian noise) ==");
    let mut checks = CheckList::new();
    let d = 64;
    let (x, y) = pair_at_distance(d, 4.0, Seed::new(0xE4));
    let true_d = sq_distance(&x, &y);
    let z: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a - b).collect();
    let l4 = l4_norm(&z);
    let eps = 1.0;

    let cfg = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.25)
        .beta(0.05)
        .epsilon(eps)
        .build()
        .expect("config");
    let (k, s) = (cfg.k_sjlt(), cfg.s());
    println!("k = {k}, s = {s}, e^(-s) = {:.3e}", (-(s as f64)).exp());

    // Predicted variance sweep.
    let mut table = Table::new(vec!["delta", "var(laplace)", "var(gaussian)", "winner"]);
    let lap = var_sjlt_laplace(k, s, eps, true_d, l4);
    for exp10 in [1i32, 2, 4, 8, 12, 16, 20, 28, 36, 44, 52, 60] {
        let delta = 10f64.powi(-exp10);
        let gau = var_sjlt_gaussian(k, eps, delta, true_d, l4);
        table.row(vec![
            format!("1e-{exp10}"),
            fmt_g(lap),
            fmt_g(gau),
            if lap < gau { "laplace" } else { "gaussian" }.to_string(),
        ]);
    }
    println!("{table}");

    let dstar = delta_crossover(k, s, eps, true_d, l4);
    let ln_inv = -dstar.ln();
    println!("predicted crossover delta* = {dstar:.3e} (ln(1/delta*) = {ln_inv:.2}, s = {s})");
    // Θ(s) with generous constants: the exact constant depends on the
    // moment ratios (Laplace E[η⁴]/E[η²]² = 6 vs Gaussian 3).
    checks.check(
        &format!(
            "crossover shape: ln(1/delta*)/s = {:.2} in [0.3, 12]",
            ln_inv / s as f64
        ),
        (0.3..=12.0).contains(&(ln_inv / s as f64)),
    );

    // Empirical confirmation on both sides of δ*.
    let reps = scaled(2500, scale);
    let below = (dstar.ln() * 3.0).exp().max(1e-300); // δ = δ*³ ≪ δ*
    let above = dstar.sqrt().min(0.4); // δ = √δ* ≫ δ*
    let emp = |delta: Option<f64>, noise_tag: &str| {
        let cfg = {
            let mut b = SketchConfig::builder()
                .input_dim(d)
                .alpha(0.25)
                .beta(0.05)
                .epsilon(eps);
            if let Some(dl) = delta {
                b = b.delta(dl);
            }
            b.build().expect("config")
        };
        mc_summary(reps, |rep| {
            let sk = if noise_tag == "laplace" {
                PrivateSjlt::with_laplace(&cfg, Seed::new(rep)).expect("sjlt")
            } else {
                PrivateSjlt::with_gaussian(&cfg, Seed::new(rep)).expect("sjlt")
            };
            let a = sk.sketch(&x, Seed::new(11_000_000 + rep));
            let b = sk.sketch(&y, Seed::new(12_000_000 + rep));
            sk.estimate_sq_distance(&a, &b)
        })
    };
    let v_lap = emp(None, "laplace").variance();
    let v_gau_below = emp(Some(below), "gaussian").variance();
    let v_gau_above = emp(Some(above), "gaussian").variance();
    println!(
        "empirical: var(lap) = {}, var(gau, delta={below:.1e}) = {}, var(gau, delta={above:.1e}) = {}",
        fmt_g(v_lap),
        fmt_g(v_gau_below),
        fmt_g(v_gau_above)
    );
    checks.check(
        "empirical: laplace wins below the crossover",
        v_lap < v_gau_below,
    );
    checks.check(
        "empirical: gaussian wins above the crossover",
        v_gau_above < v_lap,
    );

    // Note 5 agreement: the config rule flips exactly at e^{-s}.
    let thresh = cfg.laplace_delta_threshold();
    let choice_below = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.25)
        .beta(0.05)
        .epsilon(eps)
        .delta(thresh * 0.5)
        .build()
        .expect("config")
        .sjlt_noise_choice();
    let choice_above = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.25)
        .beta(0.05)
        .epsilon(eps)
        .delta((thresh * 2.0).min(0.4))
        .build()
        .expect("config")
        .sjlt_noise_choice();
    checks.check(
        "Note 5 rule flips at e^(-s)",
        format!("{choice_below:?}") == "Laplace" && format!("{choice_above:?}") == "Gaussian",
    );

    checks.finish("E4")
}
