//! E12 — the general Lemma 3 identity across the full
//! transform × noise grid, including the §2.3.1 discrete mechanisms.
//!
//! For every LPP transform (iid, Achlioptas, FJLT, SJLT, SJLT-graph) and
//! every zero-mean noise family (Laplace, Gaussian, discrete Laplace,
//! discrete Gaussian, none), the estimator must be unbiased; for the SJLT
//! (whose transform term is exact) the Lemma 3 variance must match.
//! We also report the utility overhead of the discrete mechanisms versus
//! their continuous counterparts (CKS: discrete Gaussian's `E[η²] ≤ σ²`).

use crate::experiments::scaled;
use crate::runner::{mc_summary, CheckList};
use crate::workload::pair_at_distance;
use dp_core::variance::lemma3_variance;
use dp_hashing::Seed;
use dp_linalg::vector::{l4_norm, sq_distance};
use dp_noise::mechanism::{
    DiscreteGaussianMechanism, DiscreteLaplaceMechanism, GaussianMechanism, LaplaceMechanism,
    NoiseMechanism, ZeroNoise,
};
use dp_stats::table::fmt_g;
use dp_stats::Table;
use dp_transforms::achlioptas::Achlioptas;
use dp_transforms::fjlt::Fjlt;
use dp_transforms::gaussian_iid::GaussianIid;
use dp_transforms::sjlt::Sjlt;
use dp_transforms::sjlt_graph::SjltGraph;
use dp_transforms::srht::Srht;
use dp_transforms::{JlParams, LinearTransform};

fn noise_by_name(name: &str, eps: f64, delta: f64) -> Box<dyn NoiseMechanism> {
    // Sensitivities are taken as the SJLT's worst case (√s with s = 4 → 2)
    // so the same mechanism works across the grid for the identity check.
    match name {
        "laplace" => Box::new(LaplaceMechanism::new(2.0, eps).expect("mech")),
        "gaussian" => Box::new(GaussianMechanism::new(1.0, eps, delta).expect("mech")),
        "dlaplace" => Box::new(DiscreteLaplaceMechanism::new(2.0, eps).expect("mech")),
        "dgaussian" => Box::new(DiscreteGaussianMechanism::new(1.0, eps, delta).expect("mech")),
        "none" => Box::new(ZeroNoise),
        other => panic!("unknown noise {other}"),
    }
}

/// Run the experiment; returns overall pass.
pub fn run(scale: f64) -> bool {
    println!("== E12: Lemma 3 across the transform x noise grid ==");
    let mut checks = CheckList::new();
    let d = 48;
    let (k, s, t_indep) = (32usize, 4usize, 6usize);
    let params = JlParams::new(0.3, 0.1).expect("params");
    let (x, y) = pair_at_distance(d, 9.0, Seed::new(0xE12));
    let true_d = sq_distance(&x, &y);
    let z: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a - b).collect();
    let l4 = l4_norm(&z);
    let reps = scaled(2500, scale);
    let (eps, delta) = (1.5, 1e-6);

    let transforms = ["iid", "achlioptas", "fjlt", "sjlt", "sjlt-graph", "srht"];
    let noises = ["laplace", "gaussian", "dlaplace", "dgaussian", "none"];
    let mut table = Table::new(vec!["transform", "noise", "mean", "bias-z", "emp var"]);

    for t_name in transforms {
        for n_name in noises {
            let summary = mc_summary(reps, |rep| {
                let noise = noise_by_name(n_name, eps, delta);
                let seed = Seed::new(rep);
                let apply = |v: &[f64]| -> Vec<f64> {
                    match t_name {
                        "iid" => GaussianIid::new(d, k, seed).expect("t").apply(v),
                        "achlioptas" => Achlioptas::new(d, k, seed).expect("t").apply(v),
                        "fjlt" => Fjlt::new(d, k, &params, seed).expect("t").apply(v),
                        "sjlt" => Sjlt::new(d, k, s, t_indep, seed).expect("t").apply(v),
                        "sjlt-graph" => SjltGraph::new(d, k, s, seed).expect("t").apply(v),
                        "srht" => Srht::new(d, k, seed).expect("t").apply(v),
                        other => panic!("unknown transform {other}"),
                    }
                    .expect("apply")
                };
                let mut sa = apply(&x);
                let mut sb = apply(&y);
                let mut rng_a = Seed::new(51_000_000 + rep).rng();
                let mut rng_b = Seed::new(52_000_000 + rep).rng();
                for v in sa.iter_mut() {
                    *v += noise.sample(&mut rng_a);
                }
                for v in sb.iter_mut() {
                    *v += noise.sample(&mut rng_b);
                }
                let raw: f64 = sa
                    .iter()
                    .zip(&sb)
                    .map(|(a, b)| {
                        let e = a - b;
                        e * e
                    })
                    .sum();
                raw - 2.0 * k as f64 * noise.second_moment()
            });
            let bias_z = (summary.mean() - true_d).abs() / summary.stderr().max(1e-12);
            table.row(vec![
                t_name.to_string(),
                n_name.to_string(),
                fmt_g(summary.mean()),
                format!("{bias_z:.2}"),
                fmt_g(summary.variance()),
            ]);
            checks.check(
                &format!("{t_name} x {n_name}: unbiased (|z| = {bias_z:.2} < 5)"),
                bias_z < 5.0,
            );

            // Exact variance identity for the SJLT block construction.
            if t_name == "sjlt" && n_name != "none" {
                let noise = noise_by_name(n_name, eps, delta);
                let predicted = lemma3_variance(
                    k,
                    true_d,
                    dp_core::variance::var_transform_sjlt(k, true_d, l4),
                    noise.second_moment(),
                    noise.fourth_moment(),
                );
                let ratio = summary.variance() / predicted;
                checks.check(
                    &format!("sjlt x {n_name}: Lemma 3 variance identity (ratio {ratio:.3})"),
                    (0.75..=1.3).contains(&ratio),
                );
            }
        }
    }
    println!("{table}");

    // Discrete-vs-continuous utility overhead (CKS).
    let lap = LaplaceMechanism::new(2.0, eps).expect("mech");
    let dlap = DiscreteLaplaceMechanism::new(2.0, eps).expect("mech");
    let gau = GaussianMechanism::new(1.0, eps, delta).expect("mech");
    let dgau = DiscreteGaussianMechanism::new(1.0, eps, delta).expect("mech");
    let lap_ratio = dlap.second_moment() / lap.second_moment();
    let gau_ratio = dgau.second_moment() / gau.second_moment();
    println!(
        "discrete/continuous E[eta^2] ratios: laplace {lap_ratio:.4}, gaussian {gau_ratio:.4}"
    );
    checks.check(
        &format!("discrete Laplace variance within 10% of continuous ({lap_ratio:.3})"),
        (0.9..=1.1).contains(&lap_ratio),
    );
    checks.check(
        &format!("discrete Gaussian variance <= continuous (CKS) ({gau_ratio:.3})"),
        gau_ratio <= 1.0 + 1e-9,
    );

    checks.finish("E12")
}
