//! E6 — streaming update cost (Theorem 3, item 4).
//!
//! A turnstile update touches `s` rows for the SJLT versus `k` rows for a
//! dense transform. We time `StreamingSketch::update` across `k` at fixed
//! `s` (should be flat in `k` for the SJLT, linear in `k` for the dense
//! baseline) and across `s` at fixed `k` (should grow with `s`).

use crate::runner::{time_per_op, CheckList};
use dp_hashing::{Prng, Seed};
use dp_stats::{loglog_slope, Table};
use dp_stream::StreamingSketch;
use dp_transforms::gaussian_iid::GaussianIid;
use dp_transforms::sjlt::Sjlt;

/// Run the experiment; returns overall pass.
pub fn run(scale: f64) -> bool {
    println!("== E6: turnstile update time (O(s) vs O(k)) ==");
    let mut checks = CheckList::new();
    let d = 1 << 12;
    let iters = (20_000.0 * scale.max(0.1)) as u32;

    // Sweep k at fixed s.
    let s = 8usize;
    let ks = [256usize, 1024, 4096];
    let mut table = Table::new(vec!["k", "sjlt(s=8) ns/update", "dense ns/update"]);
    let (mut t_sjlt, mut t_dense) = (Vec::new(), Vec::new());
    for &k in &ks {
        let mut stream = StreamingSketch::new(
            Sjlt::new(d, k, s, 6, Seed::new(1)).expect("sjlt"),
            "sjlt".into(),
        );
        let mut rng = Seed::new(2).rng();
        let ts = time_per_op(iters, || {
            let j = rng.next_range(d as u64) as usize;
            stream.update(j, 1.0).expect("update");
        });
        let mut dense_stream = StreamingSketch::new(
            GaussianIid::new(d, k, Seed::new(1)).expect("iid"),
            "iid".into(),
        );
        let td = time_per_op(iters.min(4000), || {
            let j = rng.next_range(d as u64) as usize;
            dense_stream.update(j, 1.0).expect("update");
        });
        table.row(vec![k.to_string(), format!("{ts:.0}"), format!("{td:.0}")]);
        t_sjlt.push(ts);
        t_dense.push(td);
    }
    println!("{table}");

    let ksf: Vec<f64> = ks.iter().map(|&k| k as f64).collect();
    let slope_sjlt_k = loglog_slope(&ksf, &t_sjlt);
    let slope_dense_k = loglog_slope(&ksf, &t_dense);
    println!("slopes in k: sjlt {slope_sjlt_k:.2}, dense {slope_dense_k:.2}");
    checks.check(
        &format!("sjlt update time independent of k (slope {slope_sjlt_k:.2} < 0.35)"),
        slope_sjlt_k.abs() < 0.35,
    );
    // A column update on a row-major k x d matrix is a stride-d walk, so
    // cache misses push the measured exponent slightly above 1 at large
    // k; the claim is "grows at least linearly with k".
    checks.check(
        &format!("dense update time ~ linear in k (slope {slope_dense_k:.2} in [0.6, 1.8])"),
        (0.6..=1.8).contains(&slope_dense_k),
    );
    checks.check(
        "sjlt updates are faster than dense at k = 4096",
        t_sjlt[2] < t_dense[2],
    );

    // Sweep s at fixed k.
    let k = 4096usize;
    let ss = [2usize, 8, 32, 128];
    let mut table2 = Table::new(vec!["s", "sjlt ns/update"]);
    let mut t_by_s = Vec::new();
    for &s in &ss {
        let mut stream = StreamingSketch::new(
            Sjlt::new(d, k, s, 6, Seed::new(3)).expect("sjlt"),
            "sjlt".into(),
        );
        let mut rng = Seed::new(4).rng();
        let ts = time_per_op(iters, || {
            let j = rng.next_range(d as u64) as usize;
            stream.update(j, 1.0).expect("update");
        });
        table2.row(vec![s.to_string(), format!("{ts:.0}")]);
        t_by_s.push(ts);
    }
    println!("{table2}");
    let ssf: Vec<f64> = ss.iter().map(|&s| s as f64).collect();
    let slope_s = loglog_slope(&ssf, &t_by_s);
    println!("slope in s: {slope_s:.2}");
    checks.check(
        &format!("sjlt update time ~ linear in s (slope {slope_s:.2} in [0.5, 1.4])"),
        (0.5..=1.4).contains(&slope_s),
    );

    checks.finish("E6")
}
