//! E13 (ablation) — SJLT hash-independence degree.
//!
//! Kane–Nelson require `O(log 1/β)`-wise independent hash families; the
//! variance analysis (Lemma 10) needs only small constant independence.
//! This ablation sweeps the polynomial degree `t` and checks that
//! (a) the empirical estimator variance is insensitive to `t ≥ 2`
//! (so our default `t = max(4, ⌈ln 1/β⌉)` is not silently load-bearing
//! on these workloads), and (b) the library *floors* the degree at 2:
//! a request for `t = 1` (constant hash functions, which would collapse
//! every block onto one row and bias the estimator toward `(Σzⱼ)²`)
//! is silently upgraded, so the degenerate family is unreachable.

use crate::experiments::scaled;
use crate::runner::{mc_summary, CheckList};
use crate::workload::pair_at_distance;
use dp_core::framework::GenSketcher;
use dp_core::variance::lemma3_variance;
use dp_hashing::Seed;
use dp_linalg::vector::{l4_norm, sq_distance};
use dp_noise::mechanism::{LaplaceMechanism, NoiseMechanism};
use dp_stats::table::fmt_g;
use dp_stats::Table;
use dp_transforms::sjlt::Sjlt;

/// Run the experiment; returns overall pass.
pub fn run(scale: f64) -> bool {
    println!("== E13: SJLT hash-independence ablation ==");
    let mut checks = CheckList::new();
    let d = 48;
    let (k, s) = (32usize, 4usize);
    let eps = 2.0;
    let (x, y) = pair_at_distance(d, 16.0, Seed::new(0xE13));
    let true_d = sq_distance(&x, &y);
    let z: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a - b).collect();
    let l4 = l4_norm(&z);
    let reps = scaled(3000, scale);

    let mech = LaplaceMechanism::new((s as f64).sqrt(), eps).expect("mech");
    let predicted = lemma3_variance(
        k,
        true_d,
        dp_core::variance::var_transform_sjlt(k, true_d, l4),
        mech.second_moment(),
        mech.fourth_moment(),
    );

    let mut table = Table::new(vec!["t (independence)", "emp var", "ratio to Lemma 3"]);
    let mut ratios = Vec::new();
    for t_indep in [1usize, 2, 4, 8, 16] {
        let summary = mc_summary(reps, |rep| {
            let t = Sjlt::new(d, k, s, t_indep, Seed::new(rep)).expect("sjlt");
            let m = LaplaceMechanism::new((s as f64).sqrt(), eps).expect("mech");
            let g = GenSketcher::new(t, m, "e13");
            let a = g.sketch(&x, Seed::new(61_000_000 + rep)).expect("sketch");
            let b = g.sketch(&y, Seed::new(62_000_000 + rep)).expect("sketch");
            g.estimate_sq_distance(&a, &b).expect("estimate")
        });
        let ratio = summary.variance() / predicted;
        table.row(vec![
            t_indep.to_string(),
            fmt_g(summary.variance()),
            format!("{ratio:.3}"),
        ]);
        ratios.push((t_indep, ratio));
    }
    println!("{table}");

    for &(t_indep, ratio) in &ratios {
        if t_indep >= 2 {
            checks.check(
                &format!("t = {t_indep}: variance matches Lemma 3 (ratio {ratio:.3})"),
                (0.75..=1.3).contains(&ratio),
            );
        }
    }
    // The library floors the family degree at 2, making the degenerate
    // constant-hash family unreachable: a t = 1 request must behave
    // exactly like t = 2 (same hashes after the floor).
    checks.check(
        &format!(
            "t = 1 request is floored to t = 2 (ratios {:.4} == {:.4})",
            ratios[0].1, ratios[1].1
        ),
        (ratios[0].1 - ratios[1].1).abs() < 1e-9,
    );

    checks.finish("E13")
}
