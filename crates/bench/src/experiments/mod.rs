//! One module per experiment in the DESIGN.md index (E1–E13).
//!
//! Each module exposes `run(scale) -> bool`: `scale` multiplies the
//! Monte-Carlo repetition counts (1.0 = the defaults recorded in
//! EXPERIMENTS.md; smaller for smoke runs), and the return value is the
//! overall pass/fail of the experiment's `CHECK` gates.

pub mod e10_sensitivity;
pub mod e11_jl_accuracy;
pub mod e12_general_framework;
pub mod e13_independence_ablation;
pub mod e1_variance_estimators;
pub mod e3_fjlt_input_dim;
pub mod e4_delta_crossover;
pub mod e5_timing_sketch;
pub mod e6_update_time;
pub mod e7_privacy_audit;
pub mod e8_lower_bound;
pub mod e9_optimal_k;

/// Scale a repetition count, keeping at least a useful floor.
#[must_use]
pub fn scaled(base: u64, scale: f64) -> u64 {
    ((base as f64 * scale) as u64).max(50)
}
