//! E11 — non-private JL accuracy at the paper's parameter choices.
//!
//! `k = Θ(α⁻² ln(1/β))` must give `(1±α)` squared-distance preservation
//! with probability ≥ 1 − β for all four transform families (JL lemma;
//! Lemma 5 for the FJLT; Kane–Nelson for the SJLT). We draw fresh
//! transform seeds per trial and measure the distortion-failure rate.

use crate::experiments::scaled;
use crate::runner::CheckList;
use crate::workload::pair_at_distance;
use dp_hashing::Seed;
use dp_linalg::vector::sq_distance;
use dp_stats::Table;
use dp_transforms::achlioptas::Achlioptas;
use dp_transforms::fjlt::Fjlt;
use dp_transforms::gaussian_iid::GaussianIid;
use dp_transforms::sjlt::Sjlt;
use dp_transforms::sjlt_graph::SjltGraph;
use dp_transforms::{JlParams, LinearTransform};

/// Run the experiment; returns overall pass.
pub fn run(scale: f64) -> bool {
    println!("== E11: JL distance preservation at k(alpha, beta) ==");
    let mut checks = CheckList::new();
    let d = 256;
    let trials = scaled(1500, scale);

    for (alpha, beta) in [(0.3, 0.1), (0.2, 0.05)] {
        let params = JlParams::new(alpha, beta).expect("params");
        let (k, k_sjlt, s, t_indep) = (
            params.k(),
            params.k_for_sjlt(),
            params.s(),
            params.independence(),
        );
        println!("alpha = {alpha}, beta = {beta}: k = {k}, s = {s}");
        let mut table = Table::new(vec!["transform", "fail rate", "beta", "pass"]);
        // Failure-rate gate with MC slack.
        let gate = beta + 3.0 * (beta / trials as f64).sqrt();

        type ApplyFn = Box<dyn FnMut(u64, &[f64]) -> Vec<f64>>;
        let mut run_family = |name: &str, mut apply: ApplyFn| {
            let mut fails = 0u64;
            for rep in 0..trials {
                let (x, y) = pair_at_distance(d, 25.0, Seed::new(0xE11).index(rep));
                let true_d = sq_distance(&x, &y);
                let px = apply(rep, &x);
                let py = apply(rep, &y);
                let est = sq_distance(&px, &py);
                if (est / true_d - 1.0).abs() > alpha {
                    fails += 1;
                }
            }
            let rate = fails as f64 / trials as f64;
            let pass = rate <= gate;
            table.row(vec![
                name.to_string(),
                format!("{rate:.4}"),
                format!("{beta}"),
                pass.to_string(),
            ]);
            checks.check(
                &format!("{name} (alpha={alpha}): fail rate {rate:.4} <= beta {beta} (+slack)"),
                pass,
            );
        };

        run_family(
            "gaussian-iid",
            Box::new(move |rep, v| {
                GaussianIid::new(d, k, Seed::new(rep))
                    .expect("iid")
                    .apply(v)
                    .expect("apply")
            }),
        );
        run_family(
            "achlioptas",
            Box::new(move |rep, v| {
                Achlioptas::new(d, k, Seed::new(rep))
                    .expect("achlioptas")
                    .apply(v)
                    .expect("apply")
            }),
        );
        run_family(
            "fjlt",
            Box::new(move |rep, v| {
                Fjlt::new(d, k, &params, Seed::new(rep))
                    .expect("fjlt")
                    .apply(v)
                    .expect("apply")
            }),
        );
        run_family(
            "sjlt",
            Box::new(move |rep, v| {
                Sjlt::new(d, k_sjlt, s, t_indep, Seed::new(rep))
                    .expect("sjlt")
                    .apply(v)
                    .expect("apply")
            }),
        );
        run_family(
            "sjlt-graph",
            Box::new(move |rep, v| {
                SjltGraph::new(d, k, s, Seed::new(rep))
                    .expect("sjlt-graph")
                    .apply(v)
                    .expect("apply")
            }),
        );
        println!("{table}");
    }

    checks.finish("E11")
}
