//! E3 (extended) — the d-dependence of the input-perturbed FJLT and the
//! q-density ablation.
//!
//! §7's key structural point: perturbing the *input* (Lemma 8) costs
//! noise variance that grows with `d` (`O(dσ²‖z‖² + d²σ⁴/k)`), while
//! output-perturbed constructions (SJLT, Corollary 1, Kenthapadi) are
//! d-free. We sweep `d` at fixed `k` and fit the growth exponent, then
//! ablate the FJLT density constant `q` to show the Lemma 11 floor
//! matters for variance but the paper's `q = Θ(ln²(1/β)/d)` keeps `P`
//! sparse.

use crate::experiments::scaled;
use crate::runner::{mc_summary, CheckList};
use crate::workload::pair_at_distance;
use dp_core::config::SketchConfig;
use dp_core::fjlt_private::PrivateFjltInput;
use dp_core::sjlt_private::PrivateSjlt;
use dp_hashing::Seed;
use dp_linalg::vector::sq_distance;
use dp_stats::table::fmt_g;
use dp_stats::{loglog_slope, Table};
use dp_transforms::fjlt::Fjlt;
use dp_transforms::JlParams;

/// Run the experiment; returns overall pass.
pub fn run(scale: f64) -> bool {
    println!("== E3x: input-perturbed FJLT d-dependence + q ablation ==");
    let mut checks = CheckList::new();
    let reps = scaled(600, scale);
    let dist_sq = 16.0;

    // --- d sweep at fixed (alpha, beta) hence fixed k. ---
    let ds = [64usize, 256, 1024, 4096];
    let mut table = Table::new(vec![
        "d",
        "fjlt-input emp var",
        "fjlt-input bound",
        "sjlt+laplace emp var",
    ]);
    let (mut v_fin, mut v_sj) = (Vec::new(), Vec::new());
    for &d in &ds {
        let cfg = SketchConfig::builder()
            .input_dim(d)
            .alpha(0.3)
            .beta(0.1)
            .epsilon(2.0)
            .delta(1e-6)
            .build()
            .expect("config");
        let (x, y) = pair_at_distance(d, dist_sq, Seed::new(d as u64));
        let true_d = sq_distance(&x, &y);
        let fin = mc_summary(reps, |rep| {
            let f = PrivateFjltInput::new(&cfg, Seed::new(rep)).expect("fjlt");
            let a = f.sketch(&x, Seed::new(41_000_000 + rep)).expect("sketch");
            let b = f.sketch(&y, Seed::new(42_000_000 + rep)).expect("sketch");
            f.estimate_sq_distance(&a, &b).expect("estimate")
        });
        let sj = mc_summary(reps, |rep| {
            let s = PrivateSjlt::with_laplace(&cfg, Seed::new(rep)).expect("sjlt");
            let a = s.sketch(&x, Seed::new(43_000_000 + rep));
            let b = s.sketch(&y, Seed::new(44_000_000 + rep));
            s.estimate_sq_distance(&a, &b)
        });
        let bound = PrivateFjltInput::new(&cfg, Seed::new(0))
            .expect("fjlt")
            .variance_bound(true_d)
            .predicted_variance;
        table.row(vec![
            d.to_string(),
            fmt_g(fin.variance()),
            fmt_g(bound),
            fmt_g(sj.variance()),
        ]);
        checks.check(
            &format!("d={d}: fjlt-input variance within its Lemma 8 bound"),
            fin.variance() <= bound * 1.3,
        );
        v_fin.push(fin.variance());
        v_sj.push(sj.variance());
    }
    println!("{table}");
    let dsf: Vec<f64> = ds.iter().map(|&d| d as f64).collect();
    let slope_fin = loglog_slope(&dsf, &v_fin);
    let slope_sj = loglog_slope(&dsf, &v_sj);
    println!("variance slopes in d: fjlt-input {slope_fin:.2}, sjlt {slope_sj:.2}");
    checks.check(
        &format!("fjlt-input variance grows ~ d^2/k-to-d (slope {slope_fin:.2} in [0.8, 2.4])"),
        (0.8..=2.4).contains(&slope_fin),
    );
    checks.check(
        &format!("sjlt variance is d-free (slope {slope_sj:.2} in [-0.4, 0.4])"),
        slope_sj.abs() <= 0.4,
    );
    checks.check(
        "at d = 4096 the sjlt variance beats fjlt-input by > 10x (Section 7 ordering)",
        v_sj.last().expect("nonempty") * 10.0 < *v_fin.last().expect("nonempty"),
    );

    // --- q ablation: density of P vs run-time cost structure. ---
    let d = 4096usize;
    let params = JlParams::new(0.3, 0.1).expect("params");
    let k = params.k();
    let q_paper = params.fjlt_q(d);
    let mut table2 = Table::new(vec!["q", "nnz(P)", "nnz frac"]);
    for q in [q_paper, (q_paper * 8.0).min(1.0), 1.0] {
        let f = Fjlt::with_density(d, k, q, Seed::new(5)).expect("fjlt");
        table2.row(vec![
            format!("{q:.4}"),
            f.p_nnz().to_string(),
            format!("{:.4}", f.p_nnz() as f64 / (k * d) as f64),
        ]);
    }
    println!("{table2}");
    let f_paper = Fjlt::with_density(d, k, q_paper, Seed::new(5)).expect("fjlt");
    checks.check(
        &format!(
            "paper q = {:.4} keeps P sparse (density {:.4} < 0.2)",
            q_paper,
            f_paper.p_nnz() as f64 / (k * d) as f64
        ),
        (f_paper.p_nnz() as f64 / (k * d) as f64) < 0.2,
    );
    checks.check(
        "q respects the Lemma 11 floor",
        q_paper + 1e-12 >= 9.0 / (d as f64 + 9.0),
    );

    checks.finish("E3x")
}
