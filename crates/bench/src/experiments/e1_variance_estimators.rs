//! E1/E2/E3 — unbiasedness and variance of every estimator
//! (Theorems 2 and 3, Corollaries 1–2, Lemma 8).
//!
//! For each construction we Monte-Carlo the estimator over fresh public
//! seeds and noise seeds, then gate:
//! * the empirical mean against the true `‖x − y‖²` (bias z-score),
//! * the empirical variance against the paper's closed form (exact forms
//!   within 20%; bounds must not be exceeded by more than MC slack).

use crate::experiments::scaled;
use crate::runner::{mc_summary, CheckList};
use crate::workload::pair_at_distance;
use dp_core::config::SketchConfig;
use dp_core::fjlt_private::{PrivateFjltInput, PrivateFjltOutput};
use dp_core::kenthapadi::{Kenthapadi, SigmaCalibration};
use dp_core::sjlt_private::PrivateSjlt;
use dp_core::variance::{var_iid_gaussian, var_sjlt_gaussian, var_sjlt_laplace};
use dp_hashing::Seed;
use dp_linalg::vector::{l4_norm, sq_distance};
use dp_stats::table::fmt_g;
use dp_stats::Table;

/// Run the experiment; returns overall pass.
pub fn run(scale: f64) -> bool {
    println!("== E1/E2/E3: estimator unbiasedness and variance ==");
    let mut checks = CheckList::new();
    let d = 64;
    let dist_sq = 9.0;
    let (x, y) = pair_at_distance(d, dist_sq, Seed::new(0xE1));
    let true_d = sq_distance(&x, &y);
    let z: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a - b).collect();
    let l4 = l4_norm(&z);
    let reps = scaled(3000, scale);

    let cfg = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.25)
        .beta(0.05)
        .epsilon(1.0)
        .delta(1e-6)
        .build()
        .expect("valid config");
    let cfg_pure = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.25)
        .beta(0.05)
        .epsilon(1.0)
        .build()
        .expect("valid config");

    let mut table = Table::new(vec![
        "estimator",
        "mean",
        "true",
        "bias-z",
        "emp-var",
        "pred-var",
        "ratio",
    ]);

    let gate = |name: &str,
                table: &mut Table,
                checks: &mut CheckList,
                summary: dp_stats::Summary,
                predicted: f64,
                exact: bool| {
        let bias_z = (summary.mean() - true_d).abs() / summary.stderr();
        let ratio = summary.variance() / predicted;
        table.row(vec![
            name.to_string(),
            fmt_g(summary.mean()),
            fmt_g(true_d),
            format!("{bias_z:.2}"),
            fmt_g(summary.variance()),
            fmt_g(predicted),
            format!("{ratio:.3}"),
        ]);
        checks.check(
            &format!("{name}: unbiased (|z| = {bias_z:.2} < 5)"),
            bias_z < 5.0,
        );
        if exact {
            checks.check(
                &format!("{name}: variance matches closed form (ratio {ratio:.3})"),
                (0.75..=1.25).contains(&ratio),
            );
        } else {
            checks.check(
                &format!("{name}: variance within bound (ratio {ratio:.3} <= 1.15)"),
                ratio <= 1.15,
            );
        }
    };

    // E1: Kenthapadi baseline (Theorem 2, exact variance).
    let ken_sigma = {
        let b = Kenthapadi::new(&cfg, SigmaCalibration::ExactSensitivity, Seed::new(0))
            .expect("baseline");
        b.sigma()
    };
    let s_ken = mc_summary(reps, |rep| {
        let b = Kenthapadi::new(&cfg, SigmaCalibration::ExactSensitivity, Seed::new(rep))
            .expect("baseline");
        let a = b.sketch(&x, Seed::new(1_000_000 + rep)).expect("sketch");
        let c = b.sketch(&y, Seed::new(2_000_000 + rep)).expect("sketch");
        b.estimate_sq_distance(&a, &c).expect("estimate")
    });
    let k_ken = cfg.k();
    gate(
        "kenthapadi(exact)",
        &mut table,
        &mut checks,
        s_ken,
        var_iid_gaussian(k_ken, ken_sigma, true_d),
        true,
    );

    // E2: SJLT + Laplace (Theorem 3, exact Lemma 3 variance).
    let (k_sj, s_sj) = (cfg_pure.k_sjlt(), cfg_pure.s());
    let s_lap = mc_summary(reps, |rep| {
        let s = PrivateSjlt::with_laplace(&cfg_pure, Seed::new(rep)).expect("sjlt");
        let a = s.sketch(&x, Seed::new(3_000_000 + rep));
        let b = s.sketch(&y, Seed::new(4_000_000 + rep));
        s.estimate_sq_distance(&a, &b)
    });
    gate(
        "sjlt+laplace",
        &mut table,
        &mut checks,
        s_lap,
        var_sjlt_laplace(k_sj, s_sj, 1.0, true_d, l4),
        true,
    );

    // E2b: SJLT + Gaussian (§6.2.3 variant, exact Lemma 3 variance).
    let s_gau = mc_summary(reps, |rep| {
        let s = PrivateSjlt::with_gaussian(&cfg, Seed::new(rep)).expect("sjlt");
        let a = s.sketch(&x, Seed::new(5_000_000 + rep));
        let b = s.sketch(&y, Seed::new(6_000_000 + rep));
        s.estimate_sq_distance(&a, &b)
    });
    gate(
        "sjlt+gaussian",
        &mut table,
        &mut checks,
        s_gau,
        var_sjlt_gaussian(cfg.k_sjlt(), 1.0, 1e-6, true_d, l4),
        true,
    );

    // E3: FJLT input perturbation (Lemma 8, bound).
    let fjlt_in_bound = PrivateFjltInput::new(&cfg, Seed::new(0))
        .expect("fjlt")
        .variance_bound(true_d)
        .predicted_variance;
    let s_fin = mc_summary(reps.min(1500), |rep| {
        let f = PrivateFjltInput::new(&cfg, Seed::new(rep)).expect("fjlt");
        let a = f.sketch(&x, Seed::new(7_000_000 + rep)).expect("sketch");
        let b = f.sketch(&y, Seed::new(8_000_000 + rep)).expect("sketch");
        f.estimate_sq_distance(&a, &b).expect("estimate")
    });
    gate(
        "fjlt-input",
        &mut table,
        &mut checks,
        s_fin,
        fjlt_in_bound,
        false,
    );

    // E3b: FJLT output perturbation (Corollary 1, bound).
    let fjlt_out_bound = PrivateFjltOutput::new(&cfg, Seed::new(0))
        .expect("fjlt")
        .variance_bound(true_d)
        .predicted_variance;
    let s_fout = mc_summary(reps.min(1500), |rep| {
        let f = PrivateFjltOutput::new(&cfg, Seed::new(rep)).expect("fjlt");
        let a = f.sketch(&x, Seed::new(9_000_000 + rep)).expect("sketch");
        let b = f.sketch(&y, Seed::new(10_000_000 + rep)).expect("sketch");
        f.estimate_sq_distance(&a, &b).expect("estimate")
    });
    gate(
        "fjlt-output",
        &mut table,
        &mut checks,
        s_fout,
        fjlt_out_bound,
        false,
    );

    println!("{table}");

    // §7 ordering at δ = 1e-6 > e^{-s}: Gaussian-noise SJLT should beat
    // Laplace-noise SJLT; and the iid baseline always beats fjlt-input.
    checks.check(
        "ordering: sjlt+gaussian var < sjlt+laplace var at moderate delta",
        s_gau.variance() < s_lap.variance(),
    );
    // The paper's "Kenthapadi always beats fjlt-input" assumes k < d
    // (§7); our d = 64 < k here, so check the claim where it applies —
    // predicted variances at d = 4096 with the same (ε, δ).
    {
        use dp_core::variance::var_fjlt_input_bound;
        let big_d = 4096;
        let sigma = dp_core::variance::gaussian_sigma(1.0, 1.0, 1e-6);
        let q = cfg.jl().fjlt_q(big_d);
        let v_fjlt = var_fjlt_input_bound(k_ken, big_d, q, sigma, true_d);
        let v_ken = var_iid_gaussian(k_ken, ken_sigma, true_d);
        checks.check(
            "ordering (k < d regime): kenthapadi var < fjlt-input var",
            v_ken < v_fjlt,
        );
    }

    checks.finish("E1/E2/E3")
}
