//! E8 — the §2.4 lower-bound landscape on binary vectors.
//!
//! McGregor et al.: any two-party DP protocol for Hamming distance incurs
//! additive error `Ω̃(√k)` (k the sketch/communication size); randomized
//! response achieves `O(√d)`. For binary vectors Hamming distance equals
//! squared Euclidean distance, so our sketches play in the same arena.
//! We measure additive error (RMSE) of (a) randomized response and (b)
//! the private SJLT across `d`, and check the scalings: RR error ~ √d;
//! sketch noise-floor error ≥ c·√k/ε²-scale (the lower bound's shape).

use crate::experiments::scaled;
use crate::runner::{mc_summary, CheckList};
use crate::workload::{binary_vec, flip_bits};
use dp_core::config::SketchConfig;
use dp_core::sjlt_private::PrivateSjlt;
use dp_hashing::Seed;
use dp_noise::randomized_response::RandomizedResponse;
use dp_stats::{loglog_slope, Table};

/// Run the experiment; returns overall pass.
pub fn run(scale: f64) -> bool {
    println!("== E8: binary-vector additive error vs the lower bounds ==");
    let mut checks = CheckList::new();
    let eps = 1.0;
    let reps = scaled(800, scale);

    let mut table = Table::new(vec![
        "d",
        "hamming",
        "rr rmse",
        "0.5*sqrt(d)/(1-2p)^2",
        "sjlt rmse",
        "k",
        "sqrt(k)",
    ]);
    let rr = RandomizedResponse::new(eps).expect("rr");
    let ds = [256usize, 1024, 4096];
    let (mut rr_err, mut sk_err, mut sk_k) = (Vec::new(), Vec::new(), Vec::new());
    for &d in &ds {
        let h = d / 8;
        let x = binary_vec(d, d / 4, Seed::new(d as u64));
        let y = flip_bits(&x, h, Seed::new(d as u64 + 1));

        // Randomized response RMSE.
        let rr_sq = mc_summary(reps, |rep| {
            let mut rng = Seed::new(0xE8).index(rep).rng();
            let rx = rr.randomize(&x, &mut rng);
            let ry = rr.randomize(&y, &mut rng);
            let e = rr.estimate_hamming(&rx, &ry) - h as f64;
            e * e
        });
        let rr_rmse = rr_sq.mean().sqrt();

        // Private SJLT RMSE.
        let cfg = SketchConfig::builder()
            .input_dim(d)
            .alpha(0.25)
            .beta(0.05)
            .epsilon(eps)
            .build()
            .expect("config");
        let k = cfg.k_sjlt();
        let sk_sq = mc_summary(reps, |rep| {
            let s = PrivateSjlt::with_laplace(&cfg, Seed::new(rep)).expect("sjlt");
            let a = s.sketch(&x, Seed::new(21_000_000 + rep));
            let b = s.sketch(&y, Seed::new(22_000_000 + rep));
            let e = s.estimate_sq_distance(&a, &b) - h as f64;
            e * e
        });
        let sk_rmse = sk_sq.mean().sqrt();
        table.row(vec![
            d.to_string(),
            h.to_string(),
            format!("{rr_rmse:.1}"),
            format!("{:.1}", rr.error_stddev_bound(d)),
            format!("{sk_rmse:.1}"),
            k.to_string(),
            format!("{:.1}", (k as f64).sqrt()),
        ]);
        rr_err.push(rr_rmse);
        sk_err.push(sk_rmse);
        sk_k.push(k as f64);
    }
    println!("{table}");

    let dsf: Vec<f64> = ds.iter().map(|&d| d as f64).collect();
    let rr_slope = loglog_slope(&dsf, &rr_err);
    println!("RR error slope in d: {rr_slope:.2} (theory 0.5)");
    checks.check(
        &format!("RR additive error ~ sqrt(d) (slope {rr_slope:.2} in [0.35, 0.65])"),
        (0.35..=0.65).contains(&rr_slope),
    );
    // RR error within its analytic bound.
    for (i, &d) in ds.iter().enumerate() {
        checks.check(
            &format!("RR rmse at d={d} within 1.5x of the 0.5*sqrt(d)/(1-2p)^2 bound"),
            rr_err[i] <= 1.5 * rr.error_stddev_bound(d),
        );
    }
    // Lower-bound shape: sketch error must be Ω(√k) — the noise floor
    // 2k·E[η²] fluctuates with stddev ≥ √(2k·(E[η⁴]+E[η²]²)) ≥ √k·2s/ε².
    // With k constant in d here (α, β fixed), the sketch error should be
    // roughly flat in d, and at least √k in magnitude.
    for (i, _) in ds.iter().enumerate() {
        checks.check(
            &format!(
                "sketch additive error {:.1} >= sqrt(k) = {:.1} (McGregor shape)",
                sk_err[i],
                sk_k[i].sqrt()
            ),
            sk_err[i] >= sk_k[i].sqrt(),
        );
    }
    // RR (error √d) loses to the sketch when h is large but wins on raw
    // additive error for moderate d — the documented trade-off: check
    // the sketch error is flat in d while RR's grows.
    let sk_slope = loglog_slope(&dsf, &sk_err);
    println!("sketch error slope in d: {sk_slope:.2} (theory ~ distance-driven, sub-0.5 here)");
    checks.check(
        &format!(
            "sketch error grows slower with d than RR error ({sk_slope:.2} < {rr_slope:.2} + 0.1)"
        ),
        sk_slope < rr_slope + 0.1,
    );

    checks.finish("E8")
}
