//! Benchmark the two serve modes under concurrent clients.
//!
//! Spins up a `dp-server` on a loopback TCP socket in each serve mode
//! (`threads` — one blocking thread per connection; `evloop` — the
//! `dp-net` poll reactor), ingests one batch of releases, then drives
//! 1/2/4/8 concurrent clients issuing point queries (knn) and records
//! throughput plus p50/p99 per-request latency.
//!
//! Before any timing is trusted, one knn answer per mode is verified
//! **bit-identical** to the in-process engine — the transport must
//! never touch the numbers.
//!
//! Single-host record: all clients, all serve threads/loops, and the
//! engine share this machine's CPUs (CI pins one), so the numbers
//! measure protocol + scheduling overhead, not scale-out. The
//! trajectory to watch is evloop holding throughput as clients exceed
//! serving threads, where thread mode must queue at accept.
//!
//! Usage: `bench_server [--quick] [--out <path>]`

use dp_bench::workload::gaussian_vec;
use dp_core::config::SketchConfig;
use dp_core::json::JsonValue;
use dp_core::release::Release;
use dp_core::sketcher::{Construction, PrivateSketcher, SketcherSpec};
use dp_engine::{QueryEngine, SketchStore};
use dp_hashing::Seed;
use dp_server::{Client, Endpoint, ServeMode, Server};
use std::sync::Barrier;
use std::time::Instant;

struct Measurement {
    mode: &'static str,
    clients: usize,
    throughput_qps: f64,
    p50_ns: f64,
    p99_ns: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Serve `mode`, ingest the batch, then drive `clients` concurrent
/// connections each issuing `queries` knn requests. Returns the wall
/// time of the measured phase plus every per-request latency (ns).
fn run_mode(
    mode: ServeMode,
    spec: &SketcherSpec,
    releases: &[Release],
    clients: usize,
    queries: usize,
    expected_knn: &[(u64, f64)],
) -> (f64, Vec<f64>, bool) {
    let server = Server::bind(
        Endpoint::Tcp("127.0.0.1:0".to_string()),
        QueryEngine::new(SketchStore::adopting()),
    )
    .expect("bind");
    let endpoint = server.local_endpoint();
    // Thread mode needs a thread per concurrent client; the reactor
    // serves any number of connections on a fixed two loops.
    let workers = match mode {
        ServeMode::Threads => clients + 1,
        ServeMode::EvLoop => 2,
    };
    let probe_party = releases[0].party_id;
    let barrier = Barrier::new(clients + 1);

    std::thread::scope(|scope| {
        let serve = scope.spawn(|| server.serve_mode(mode, workers));

        let mut setup = Client::connect(&endpoint).expect("connect setup");
        setup.hello(spec).expect("hello");
        for r in releases {
            setup.ingest(r).expect("ingest");
        }
        // Bit-identity gate before timing.
        let knn = setup.knn(probe_party, 4).expect("knn");
        let identical = knn.len() == expected_knn.len()
            && knn
                .iter()
                .zip(expected_knn)
                .all(|((pa, da), (pb, db))| pa == pb && da.to_bits() == db.to_bits());

        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let endpoint = endpoint.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(&endpoint).expect("connect");
                    let mut latencies = Vec::with_capacity(queries);
                    barrier.wait();
                    for _ in 0..queries {
                        let started = Instant::now();
                        std::hint::black_box(client.knn(probe_party, 4).expect("knn"));
                        latencies.push(started.elapsed().as_nanos() as f64);
                    }
                    latencies
                })
            })
            .collect();
        barrier.wait();
        let started = Instant::now();
        let mut latencies: Vec<f64> = Vec::with_capacity(clients * queries);
        for handle in workers {
            latencies.extend(handle.join().expect("client thread"));
        }
        let wall = started.elapsed().as_secs_f64();

        setup.shutdown().expect("shutdown");
        serve.join().expect("server thread");
        (wall, latencies, identical)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_server.json", String::as_str);

    let d = 128;
    let rows = 32;
    let queries = if quick { 100 } else { 400 };
    let config = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.3)
        .beta(0.1)
        .epsilon(1.0)
        .build()
        .expect("config");
    let spec = SketcherSpec::new(Construction::SjltAuto, config, Seed::new(23));
    let sketcher = spec.build().expect("sketcher");
    let k = sketcher.k();
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|r| gaussian_vec(d, Seed::new(5000 + r as u64)))
        .collect();
    let releases: Vec<Release> = sketcher
        .sketch_batch(&data, Seed::new(91))
        .expect("batch")
        .into_iter()
        .enumerate()
        .map(|(i, sketch)| Release {
            party_id: i as u64,
            sketch,
        })
        .collect();

    // The in-process reference answer every transport must reproduce
    // bit for bit.
    let mut reference = QueryEngine::new(SketchStore::with_spec(spec.clone()).expect("store"));
    for r in &releases {
        reference.ingest(r).expect("ingest");
    }
    let expected_knn: Vec<(u64, f64)> = reference
        .knn(releases[0].party_id, 4)
        .expect("knn")
        .into_iter()
        .map(|n| (n.party_id, n.estimated_sq_distance))
        .collect();

    println!("== bench_server: serve-mode throughput under concurrent clients ==");
    println!("d = {d}, k = {k}, rows = {rows}, {queries} knn queries per client");

    let mut measurements = Vec::new();
    let mut all_identical = true;
    for (mode, name) in [
        (ServeMode::Threads, "threads"),
        (ServeMode::EvLoop, "evloop"),
    ] {
        for clients in [1usize, 2, 4, 8] {
            let (wall, mut latencies, identical) =
                run_mode(mode, &spec, &releases, clients, queries, &expected_knn);
            all_identical &= identical;
            latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let throughput = (clients * queries) as f64 / wall;
            let p50 = percentile(&latencies, 0.50);
            let p99 = percentile(&latencies, 0.99);
            println!(
                "{name:7}  clients = {clients}  {throughput:9.0} req/s  \
                 p50 {:8.1} µs  p99 {:8.1} µs  bit-identical: {identical}",
                p50 / 1e3,
                p99 / 1e3,
            );
            measurements.push(Measurement {
                mode: name,
                clients,
                throughput_qps: throughput,
                p50_ns: p50,
                p99_ns: p99,
            });
        }
    }

    println!(
        "CHECK [{}] every transport knn answer bit-identical to the in-process engine",
        if all_identical { "PASS" } else { "FAIL" }
    );
    println!(
        "NOTE single-host record: clients and server share one CPU budget, so req/s \
         measures protocol + scheduling overhead, not scale-out"
    );

    let json = JsonValue::Object(vec![
        (
            "bench".to_string(),
            JsonValue::String("server_concurrency".to_string()),
        ),
        (
            "workload".to_string(),
            JsonValue::String("knn(k=4) point queries over loopback TCP".to_string()),
        ),
        (
            "note".to_string(),
            JsonValue::String(
                "single-host record (CI pins 1 CPU): protocol + scheduling overhead, \
                 not scale-out"
                    .to_string(),
            ),
        ),
        ("d".to_string(), JsonValue::UInt(d as u64)),
        ("k".to_string(), JsonValue::UInt(k as u64)),
        ("rows".to_string(), JsonValue::UInt(rows as u64)),
        (
            "queries_per_client".to_string(),
            JsonValue::UInt(queries as u64),
        ),
        ("bit_identical".to_string(), JsonValue::Bool(all_identical)),
        (
            "measurements".to_string(),
            JsonValue::Array(
                measurements
                    .iter()
                    .map(|m| {
                        JsonValue::Object(vec![
                            ("mode".to_string(), JsonValue::String(m.mode.to_string())),
                            ("clients".to_string(), JsonValue::UInt(m.clients as u64)),
                            (
                                "throughput_qps".to_string(),
                                JsonValue::Number(m.throughput_qps),
                            ),
                            ("p50_ns".to_string(), JsonValue::Number(m.p50_ns)),
                            ("p99_ns".to_string(), JsonValue::Number(m.p99_ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(out_path, json.to_string()).expect("write BENCH_server.json");
    println!("wrote {out_path}");
    if !all_identical {
        std::process::exit(1);
    }
}
