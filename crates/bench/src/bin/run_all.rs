//! Run every experiment in the DESIGN.md index and summarize.
//! Usage: `run_all [--quick]`.

type Experiment = (&'static str, fn(f64) -> bool);

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 0.1 } else { 1.0 };
    let experiments: Vec<Experiment> = vec![
        (
            "E1/E2/E3 variance",
            dp_bench::experiments::e1_variance_estimators::run,
        ),
        (
            "E3x fjlt input dim",
            dp_bench::experiments::e3_fjlt_input_dim::run,
        ),
        (
            "E4 delta crossover",
            dp_bench::experiments::e4_delta_crossover::run,
        ),
        (
            "E5 sketch timing",
            dp_bench::experiments::e5_timing_sketch::run,
        ),
        (
            "E6 update timing",
            dp_bench::experiments::e6_update_time::run,
        ),
        (
            "E7 privacy audit",
            dp_bench::experiments::e7_privacy_audit::run,
        ),
        (
            "E8 lower bounds",
            dp_bench::experiments::e8_lower_bound::run,
        ),
        ("E9 optimal k", dp_bench::experiments::e9_optimal_k::run),
        (
            "E10 sensitivity",
            dp_bench::experiments::e10_sensitivity::run,
        ),
        (
            "E11 jl accuracy",
            dp_bench::experiments::e11_jl_accuracy::run,
        ),
        (
            "E12 general framework",
            dp_bench::experiments::e12_general_framework::run,
        ),
        (
            "E13 independence ablation",
            dp_bench::experiments::e13_independence_ablation::run,
        ),
    ];
    let mut failures = Vec::new();
    for (name, run) in experiments {
        println!("\n######## {name} ########");
        if !run(scale) {
            failures.push(name);
        }
    }
    println!("\n======== SUMMARY ========");
    if failures.is_empty() {
        println!("all experiments passed");
    } else {
        for f in &failures {
            println!("FAILED: {f}");
        }
        std::process::exit(1);
    }
}
