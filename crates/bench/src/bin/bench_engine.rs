//! Benchmark the `dp-engine` query surface against the slice-based path
//! it replaced, and record the perf trajectory.
//!
//! Three measurements per store size:
//!
//! * **pair query**: `QueryEngine::pair` (ingest-time validation, flat
//!   arena, hoisted debias) versus the old per-call
//!   `NoisySketch::estimate_sq_distance` over a `&[Release]` slice
//!   (which re-checks compatibility and re-derives the debias constant
//!   on every call).
//! * **incremental all-pairs**: one new row into a warm engine versus
//!   recomputing the whole matrix the way the slice-based surface had
//!   to.
//!
//! Every engine answer is verified bit-identical to the slice path
//! before timing. Writes machine-readable `BENCH_engine.json`.
//!
//! Usage: `bench_engine [--quick] [--out <path>]`

use dp_bench::runner::time_per_op;
use dp_bench::workload::gaussian_vec;
use dp_core::config::SketchConfig;
use dp_core::json::JsonValue;
use dp_core::release::Release;
use dp_core::sketcher::{AnySketcher, Construction, PrivateSketcher};
use dp_engine::{QueryEngine, SketchStore};
use dp_hashing::Seed;

struct Measurement {
    rows: usize,
    ns_engine_pair: f64,
    ns_slice_pair: f64,
    pair_speedup: f64,
    ns_incremental_row: f64,
    ns_recompute_row: f64,
    incremental_speedup: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_engine.json", String::as_str);

    let d = 256;
    let cfg = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.3)
        .beta(0.1)
        .epsilon(1.0)
        .build()
        .expect("config");
    let sketcher = AnySketcher::new(Construction::SjltAuto, &cfg, Seed::new(7)).expect("sketcher");
    let k = sketcher.k();
    println!("== bench_engine: SketchStore/QueryEngine vs the slice-based path ==");
    println!("d = {d}, k = {k}");

    let row_counts: &[usize] = if quick { &[64] } else { &[64, 256] };
    // One extra row beyond the largest sweep: the incremental bench
    // grows each store by one release.
    let max_rows = *row_counts.iter().max().expect("nonempty") + 1;
    let rows: Vec<Vec<f64>> = (0..max_rows)
        .map(|r| gaussian_vec(d, Seed::new(1000 + r as u64)))
        .collect();
    let releases: Vec<Release> = sketcher
        .sketch_batch(&rows, Seed::new(99))
        .expect("batch")
        .into_iter()
        .enumerate()
        .map(|(i, sketch)| Release {
            party_id: i as u64,
            sketch,
        })
        .collect();

    let mut measurements = Vec::new();
    let mut all_identical = true;
    for &n in row_counts {
        let slice = &releases[..n];
        let mut engine = QueryEngine::new(SketchStore::adopting());
        for r in slice {
            engine.ingest(r).expect("ingest");
        }

        // Verify: every engine pair answer equals the slice path's.
        for i in 0..n.min(16) {
            for j in 0..n.min(16) {
                let via_engine = engine.pair(i as u64, j as u64).expect("pair");
                let via_slice = if i == j {
                    0.0
                } else {
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    slice[lo]
                        .sketch
                        .estimate_sq_distance(&slice[hi].sketch)
                        .expect("estimate")
                };
                all_identical &= via_engine.to_bits() == via_slice.to_bits();
            }
        }

        // Point queries over a fixed pseudo-random id schedule.
        let queries: Vec<(u64, u64)> = (0..1024u64)
            .map(|q| ((q * 37) % n as u64, (q * 61 + 13) % n as u64))
            .collect();
        let iters = if quick { 3 } else { 10 };
        let t_engine = time_per_op(iters, || {
            let mut acc = 0.0;
            for &(a, b) in &queries {
                acc += engine.pair(a, b).expect("pair");
            }
            std::hint::black_box(acc);
        }) / queries.len() as f64;
        let t_slice = time_per_op(iters, || {
            let mut acc = 0.0;
            for &(a, b) in &queries {
                if a != b {
                    acc += slice[a as usize]
                        .sketch
                        .estimate_sq_distance(&slice[b as usize].sketch)
                        .expect("estimate");
                }
            }
            std::hint::black_box(acc);
        }) / queries.len() as f64;

        // Incremental growth: a warm engine absorbing one more row vs
        // recomputing the whole (n+1)-row matrix from the slice.
        let grown = &releases[..n + 1];
        let iters_inc = if quick { 2 } else { 5 };
        let t_incremental = time_per_op(iters_inc, || {
            let mut warm = QueryEngine::new(SketchStore::adopting());
            for r in slice {
                warm.ingest(r).expect("ingest");
            }
            let _ = warm.pairwise_all();
            warm.ingest(&grown[n]).expect("ingest");
            let _ = warm.pairwise_all();
        });
        let t_warmup = time_per_op(iters_inc, || {
            let mut warm = QueryEngine::new(SketchStore::adopting());
            for r in slice {
                warm.ingest(r).expect("ingest");
            }
            let _ = warm.pairwise_all();
        });
        let t_new_row = (t_incremental - t_warmup).max(1.0);
        let t_recompute = time_per_op(iters_inc, || {
            let mut cold = QueryEngine::new(SketchStore::adopting());
            for r in grown {
                cold.ingest(r).expect("ingest");
            }
            let _ = cold.pairwise_all();
        });

        println!(
            "n = {n:5}  pair: engine {t_engine:8.1} ns vs slice {t_slice:8.1} ns ({:4.2}x)  \
             +1 row: incremental {:10.0} ns vs recompute {:10.0} ns ({:5.2}x)",
            t_slice / t_engine,
            t_new_row,
            t_recompute,
            t_recompute / t_new_row,
        );
        measurements.push(Measurement {
            rows: n,
            ns_engine_pair: t_engine,
            ns_slice_pair: t_slice,
            pair_speedup: t_slice / t_engine,
            ns_incremental_row: t_new_row,
            ns_recompute_row: t_recompute,
            incremental_speedup: t_recompute / t_new_row,
        });
    }

    println!(
        "CHECK [{}] engine pair answers bit-identical to the slice path",
        if all_identical { "PASS" } else { "FAIL" }
    );

    let json = JsonValue::Object(vec![
        (
            "bench".to_string(),
            JsonValue::String("engine_queries".to_string()),
        ),
        (
            "construction".to_string(),
            JsonValue::String("sjlt-auto".to_string()),
        ),
        ("d".to_string(), JsonValue::UInt(d as u64)),
        ("k".to_string(), JsonValue::UInt(k as u64)),
        ("bit_identical".to_string(), JsonValue::Bool(all_identical)),
        (
            "measurements".to_string(),
            JsonValue::Array(
                measurements
                    .iter()
                    .map(|m| {
                        JsonValue::Object(vec![
                            ("rows".to_string(), JsonValue::UInt(m.rows as u64)),
                            (
                                "ns_engine_pair".to_string(),
                                JsonValue::Number(m.ns_engine_pair),
                            ),
                            (
                                "ns_slice_pair".to_string(),
                                JsonValue::Number(m.ns_slice_pair),
                            ),
                            (
                                "pair_speedup".to_string(),
                                JsonValue::Number(m.pair_speedup),
                            ),
                            (
                                "ns_incremental_row".to_string(),
                                JsonValue::Number(m.ns_incremental_row),
                            ),
                            (
                                "ns_recompute_row".to_string(),
                                JsonValue::Number(m.ns_recompute_row),
                            ),
                            (
                                "incremental_speedup".to_string(),
                                JsonValue::Number(m.incremental_speedup),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(out_path, json.to_string()).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
    if !all_identical {
        std::process::exit(1);
    }
}
