//! Benchmark the batch sketching kernels and record the perf trajectory.
//!
//! Two sections, mirroring the layering the versioned-kernel split
//! introduced:
//!
//! * **kernel** — `dp_core::kernel::apply_batch` over the raw transform
//!   structures (SJLT column scatter, Achlioptas column scatter, dense
//!   i.i.d. Gaussian matvec), sweeping kernel version × batch size and
//!   comparing against the pre-PR per-row `apply_into` baseline. This
//!   is where the ns/element gate lives.
//! * **sketcher** — end-to-end `AnySketcher::sketch_batch` (projection
//!   plus per-row noise) for each construction × kernel × batch size,
//!   so the ingest-path cost model stays visible even though noise
//!   sampling dilutes the kernel-only speedup.
//!
//! Usage: `bench_sketch [--quick] [--out <path>]`
//!
//! The acceptance gate follows the bench_pairwise convention: on hosts
//! whose runtime-detected V2 backend is AVX2+FMA, the V2 batch apply
//! must run at ≤ 0.75× the V1 per-row ns/element on the dense
//! construction (where vectorization is the mechanism; the sparse
//! scatters win by hash/column amortization instead and are recorded
//! informationally). On portable-backend hosts the gate is recorded as
//! skipped with the backend noted.

use dp_bench::runner::time_per_op;
use dp_bench::workload::gaussian_vec;
use dp_core::config::SketchConfig;
use dp_core::json::JsonValue;
use dp_core::kenthapadi::SigmaCalibration;
use dp_core::kernel::{self, BatchProjection};
use dp_core::sketcher::{Construction, SketcherSpec};
use dp_core::{KernelId, PrivateSketcher};
use dp_hashing::Seed;
use dp_transforms::achlioptas::Achlioptas;
use dp_transforms::gaussian_iid::GaussianIid;
use dp_transforms::sjlt::Sjlt;

struct Measurement {
    section: &'static str,
    construction: String,
    kernel: KernelId,
    /// 0 encodes the per-row baseline (one `apply_into` per vector).
    batch: usize,
    ns_per_element: f64,
}

fn gaussian_rows(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|r| gaussian_vec(d, Seed::new(seed + r as u64)))
        .collect()
}

/// Time one full pass over `rows` through `apply_batch` in blocks of
/// `batch` (0 = per-row singleton calls), returning ns/element where an
/// element is one input coordinate.
fn time_apply(
    id: KernelId,
    p: &BatchProjection<'_>,
    rows: &[&[f64]],
    k: usize,
    batch: usize,
    iters: u32,
) -> f64 {
    let d = rows[0].len();
    let mut out = vec![0.0f64; rows.len().max(1) * k];
    let t = if batch == 0 {
        time_per_op(iters, || {
            for (row, dst) in rows.iter().zip(out.chunks_exact_mut(k)) {
                kernel::apply_batch(id, p, std::slice::from_ref(row), dst).expect("apply");
            }
        })
    } else {
        time_per_op(iters, || {
            for (chunk, dst) in rows.chunks(batch).zip(out.chunks_mut(batch * k)) {
                kernel::apply_batch(id, p, chunk, &mut dst[..chunk.len() * k]).expect("apply");
            }
        })
    };
    t / (rows.len() * d) as f64
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_sketch.json", String::as_str);

    let d = 256;
    let n = if quick { 32 } else { 64 };
    let iters = if quick { 3 } else { 5 };
    let kernels = [KernelId::V1Scalar, KernelId::V2Simd];
    let batches: &[usize] = if quick { &[1, 16] } else { &[1, 8, 64] };
    let max_batch = *batches.iter().max().expect("nonempty");
    let backend = kernel::v2_backend();
    let on_avx2 = backend == "avx2+fma";
    println!("== bench_sketch: batch sketching kernels ==");
    println!("d = {d}, rows = {n}, v2 backend = {backend}");

    let rows = gaussian_rows(n, d, 42);
    let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let mut measurements: Vec<Measurement> = Vec::new();

    // -- Section 1: the raw batch-apply kernels ------------------------
    let k = 128;
    let sjlt = Sjlt::new(d, k, 8, 4, Seed::new(11)).expect("sjlt");
    let achlioptas = Achlioptas::new(d, k, Seed::new(12)).expect("achlioptas");
    let gaussian = GaussianIid::new(d, k, Seed::new(13)).expect("gaussian");
    let projections: Vec<(&str, BatchProjection<'_>)> = vec![
        ("sjlt", BatchProjection::Columns(&sjlt)),
        ("achlioptas", BatchProjection::Columns(&achlioptas)),
        (
            "gaussian-iid",
            BatchProjection::Dense {
                matrix: gaussian.matrix(),
                transform: &gaussian,
            },
        ),
    ];
    // ns/element for (transform, kernel, per-row baseline) and the V2
    // largest-batch figure — the inputs to the gate.
    let mut gate_ratios: Vec<(String, f64)> = Vec::new();
    for (name, p) in &projections {
        let mut t_perrow_v1 = f64::NAN;
        for &kid in &kernels {
            let t_perrow = time_apply(kid, p, &row_refs, k, 0, iters);
            if kid == KernelId::V1Scalar {
                t_perrow_v1 = t_perrow;
            }
            measurements.push(Measurement {
                section: "kernel",
                construction: (*name).to_string(),
                kernel: kid,
                batch: 0,
                ns_per_element: t_perrow,
            });
            println!(
                "kernel    {name:14} {:9} per-row    {t_perrow:7.2} ns/element",
                kid.name()
            );
            for &b in batches {
                let t = time_apply(kid, p, &row_refs, k, b, iters);
                measurements.push(Measurement {
                    section: "kernel",
                    construction: (*name).to_string(),
                    kernel: kid,
                    batch: b,
                    ns_per_element: t,
                });
                println!(
                    "kernel    {name:14} {:9} batch={b:<3}  {t:7.2} ns/element  \
                     ({:4.2}x vs v1 per-row)",
                    kid.name(),
                    t / t_perrow_v1
                );
                if kid == KernelId::V2Simd && b == max_batch {
                    gate_ratios.push(((*name).to_string(), t / t_perrow_v1));
                }
            }
        }
    }

    // -- Section 2: end-to-end sketch_batch per construction -----------
    let cfg = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.3)
        .beta(0.1)
        .epsilon(1.0)
        .delta(1e-6)
        .build()
        .expect("config");
    let constructions = [
        Construction::SjltAuto,
        Construction::Achlioptas,
        Construction::Kenthapadi(SigmaCalibration::ExactSensitivity),
        Construction::FjltOutput,
    ];
    for &c in &constructions {
        for &kid in &kernels {
            let sk = SketcherSpec::new(c, cfg.clone(), Seed::new(7))
                .with_kernel(kid)
                .build()
                .expect("sketcher");
            for &b in batches {
                let t = time_per_op(iters, || {
                    for chunk in rows.chunks(b) {
                        let _ = sk.sketch_batch(chunk, Seed::new(99)).expect("batch");
                    }
                });
                let ns = t / (n * d) as f64;
                measurements.push(Measurement {
                    section: "sketcher",
                    construction: c.name().to_string(),
                    kernel: kid,
                    batch: b,
                    ns_per_element: ns,
                });
                println!(
                    "sketcher  {:14} {:9} batch={b:<3}  {ns:7.2} ns/element",
                    c.name(),
                    kid.name()
                );
            }
        }
    }

    // Acceptance gate: vectorization must pay on the dense kernel when
    // the host actually has the AVX2+FMA backend. The sparse scatters'
    // batch wins come from column/hash amortization (visible above in
    // both kernel lanes) and are not SIMD claims, so they inform but do
    // not gate.
    let dense_ratio = gate_ratios
        .iter()
        .find(|(name, _)| name == "gaussian-iid")
        .map_or(f64::NAN, |&(_, r)| r);
    let gate_check = if !on_avx2 {
        println!("CHECK [SKIP] v2 batch <= 0.75x v1 per-row ns/element (backend = {backend})");
        format!("skipped (v2 backend = {backend})")
    } else if dense_ratio <= 0.75 {
        println!("CHECK [PASS] dense v2 batch <= 0.75x v1 per-row ns/element ({dense_ratio:.3}x)");
        "pass".to_string()
    } else {
        println!("CHECK [FAIL] dense v2 batch <= 0.75x v1 per-row ns/element ({dense_ratio:.3}x)");
        "fail".to_string()
    };

    let json = JsonValue::Object(vec![
        (
            "bench".to_string(),
            JsonValue::String("sketch_batch".to_string()),
        ),
        ("d".to_string(), JsonValue::UInt(d as u64)),
        ("k".to_string(), JsonValue::UInt(k as u64)),
        ("rows".to_string(), JsonValue::UInt(n as u64)),
        (
            "v2_backend".to_string(),
            JsonValue::String(backend.to_string()),
        ),
        (
            "gate_check".to_string(),
            JsonValue::String(gate_check.clone()),
        ),
        (
            "gate_ns_per_element_ratio_v2_batch_over_v1_per_row".to_string(),
            JsonValue::Number(dense_ratio),
        ),
        (
            "batch_over_per_row_ratios_v2".to_string(),
            JsonValue::Object(
                gate_ratios
                    .iter()
                    .map(|(name, r)| (name.clone(), JsonValue::Number(*r)))
                    .collect(),
            ),
        ),
        (
            "results".to_string(),
            JsonValue::Array(
                measurements
                    .iter()
                    .map(|m| {
                        JsonValue::Object(vec![
                            (
                                "section".to_string(),
                                JsonValue::String(m.section.to_string()),
                            ),
                            (
                                "construction".to_string(),
                                JsonValue::String(m.construction.clone()),
                            ),
                            (
                                "kernel".to_string(),
                                JsonValue::String(m.kernel.name().to_string()),
                            ),
                            ("batch".to_string(), JsonValue::UInt(m.batch as u64)),
                            (
                                "ns_per_element".to_string(),
                                JsonValue::Number(m.ns_per_element),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(out_path, json.to_string() + "\n").expect("write BENCH_sketch.json");
    println!("wrote {out_path}");

    if gate_check == "fail" {
        std::process::exit(1);
    }
}
