//! Harness binary for `dp_bench::experiments::e13_independence_ablation`.
//! Usage: `exp_independence_ablation [--quick]`.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 0.1 } else { 1.0 };
    let ok = dp_bench::experiments::e13_independence_ablation::run(scale);
    std::process::exit(i32::from(!ok));
}
