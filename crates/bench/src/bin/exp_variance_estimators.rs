//! Harness binary for `dp_bench::experiments::e1_variance_estimators`.
//! Usage: `exp_variance_estimators [--quick]` (--quick shrinks Monte-Carlo sizes 10x).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 0.1 } else { 1.0 };
    let ok = dp_bench::experiments::e1_variance_estimators::run(scale);
    std::process::exit(i32::from(!ok));
}
