//! Harness binary for `dp_bench::experiments::e7_privacy_audit`.
//! Usage: `exp_privacy_audit [--quick]` (--quick shrinks Monte-Carlo sizes 10x).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 0.1 } else { 1.0 };
    let ok = dp_bench::experiments::e7_privacy_audit::run(scale);
    std::process::exit(i32::from(!ok));
}
