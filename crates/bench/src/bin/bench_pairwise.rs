//! Benchmark the tiled all-pairs kernel and record the perf trajectory.
//!
//! Measures `pairwise_sq_distances` over released sketches for a sweep
//! of matrix sizes, thread counts, and tile sizes, verifies every
//! configuration is bit-identical to the naive sequential reference, and
//! writes a machine-readable `BENCH_pairwise.json` so successive PRs can
//! track ns/pair.
//!
//! Usage: `bench_pairwise [--quick] [--out <path>]`
//!
//! The speedup acceptance check (≥2× at 4 threads for n ≥ 512) only
//! runs when the host actually has ≥ 4 hardware threads; single-core
//! hosts record the measurement and mark the check skipped.

use dp_bench::runner::time_per_op;
use dp_bench::workload::gaussian_vec;
use dp_core::config::SketchConfig;
use dp_core::json::JsonValue;
use dp_core::sketcher::{
    pairwise_sq_distances_reference, pairwise_sq_distances_with_par, AnySketcher, Construction,
    PrivateSketcher,
};
use dp_core::Parallelism;
use dp_hashing::Seed;

struct Measurement {
    rows: usize,
    threads: usize,
    tile: usize,
    ns_per_pair: f64,
    speedup_vs_single: f64,
}

/// One N(0,1) row per index, from the shared workload generator e5 also
/// uses, so benches stay comparable across the harness.
fn gaussian_rows(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|r| gaussian_vec(d, Seed::new(seed + r as u64)))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_pairwise.json", String::as_str);

    let d = 256;
    let cfg = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.3)
        .beta(0.1)
        .epsilon(1.0)
        .build()
        .expect("config");
    let sketcher = AnySketcher::new(Construction::SjltAuto, &cfg, Seed::new(7)).expect("sketcher");
    let k = sketcher.k();
    let hardware = Parallelism::new(0).threads();
    println!("== bench_pairwise: tiled all-pairs kernel ==");
    println!("d = {d}, k = {k}, hardware threads = {hardware}");

    let row_counts: &[usize] = if quick { &[64, 128] } else { &[128, 512] };
    let mut thread_sweep = vec![1usize, 2, 4, hardware];
    thread_sweep.sort_unstable();
    thread_sweep.dedup();
    let tile = Parallelism::from_env().tile();

    let max_rows = *row_counts.iter().max().expect("nonempty");
    let sketches = sketcher
        .sketch_batch(&gaussian_rows(max_rows, d, 42), Seed::new(99))
        .expect("batch");

    let mut measurements: Vec<Measurement> = Vec::new();
    let mut all_identical = true;
    for &n in row_counts {
        let subset = &sketches[..n];
        let pairs = (n * (n - 1) / 2) as f64;
        let reference = pairwise_sq_distances_reference(subset).expect("reference");
        // Hoisting gain: the tiled single-thread kernel vs the naive
        // per-pair estimator (which re-checks compatibility and
        // recomputes the debias constant for every pair).
        let iters = if quick { 2 } else { 3 };
        let t_naive = time_per_op(iters, || {
            let _ = pairwise_sq_distances_reference(subset).expect("reference");
        });
        let mut t_single = f64::NAN;
        for &threads in &thread_sweep {
            let par = Parallelism::new(threads).with_tile(tile);
            let got = pairwise_sq_distances_with_par(subset, |s| s, &par).expect("pairwise");
            let identical = got
                .as_flat()
                .iter()
                .zip(reference.as_flat())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            all_identical &= identical;
            let t = time_per_op(iters, || {
                let _ = pairwise_sq_distances_with_par(subset, |s| s, &par).expect("pairwise");
            });
            if threads == 1 {
                t_single = t;
            }
            measurements.push(Measurement {
                rows: n,
                threads,
                tile,
                ns_per_pair: t / pairs,
                speedup_vs_single: t_single / t,
            });
            println!(
                "n = {n:5}  threads = {threads:2}  tile = {tile:3}  {:9.1} ns/pair  \
                 speedup {:4.2}x  bit-identical: {identical}",
                t / pairs,
                t_single / t
            );
        }
        println!(
            "n = {n:5}  naive reference (per-pair estimator): {:9.1} ns/pair  \
             (tiled 1-thread hoisting gain {:4.2}x)",
            t_naive / pairs,
            t_naive / t_single
        );
    }

    // Acceptance: ≥2× speedup on ≥4 threads for n ≥ 512 — only
    // meaningful when the hardware can actually run 4 workers.
    let target = measurements
        .iter()
        .filter(|m| m.threads >= 4 && m.rows >= 512)
        .map(|m| m.speedup_vs_single)
        .fold(f64::NAN, f64::max);
    let speedup_check = if hardware < 4 {
        println!(
            "CHECK [SKIP] >=2x speedup on >=4 threads (host has {hardware} hardware thread(s))"
        );
        format!("skipped (available_parallelism = {hardware})")
    } else if target.is_nan() {
        println!("CHECK [SKIP] >=2x speedup on >=4 threads (no n >= 512 in this sweep)");
        "skipped (no n >= 512 measured; run without --quick)".to_string()
    } else if target >= 2.0 {
        println!("CHECK [PASS] >=2x speedup on >=4 threads for n >= 512 ({target:.2}x)");
        "pass".to_string()
    } else {
        println!("CHECK [FAIL] >=2x speedup on >=4 threads for n >= 512 ({target:.2}x)");
        "fail".to_string()
    };
    println!(
        "CHECK [{}] all configurations bit-identical to the sequential reference",
        if all_identical { "PASS" } else { "FAIL" }
    );

    let json = JsonValue::Object(vec![
        (
            "bench".to_string(),
            JsonValue::String("pairwise_sq_distances".to_string()),
        ),
        (
            "construction".to_string(),
            JsonValue::String(Construction::SjltAuto.name().to_string()),
        ),
        ("d".to_string(), JsonValue::UInt(d as u64)),
        ("k".to_string(), JsonValue::UInt(k as u64)),
        (
            "available_parallelism".to_string(),
            JsonValue::UInt(hardware as u64),
        ),
        ("bit_identical".to_string(), JsonValue::Bool(all_identical)),
        (
            "speedup_check".to_string(),
            JsonValue::String(speedup_check.clone()),
        ),
        (
            "results".to_string(),
            JsonValue::Array(
                measurements
                    .iter()
                    .map(|m| {
                        JsonValue::Object(vec![
                            ("rows".to_string(), JsonValue::UInt(m.rows as u64)),
                            ("k".to_string(), JsonValue::UInt(k as u64)),
                            ("threads".to_string(), JsonValue::UInt(m.threads as u64)),
                            ("tile".to_string(), JsonValue::UInt(m.tile as u64)),
                            ("ns_per_pair".to_string(), JsonValue::Number(m.ns_per_pair)),
                            (
                                "speedup_vs_single".to_string(),
                                JsonValue::Number(m.speedup_vs_single),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(out_path, json.to_string() + "\n").expect("write BENCH_pairwise.json");
    println!("wrote {out_path}");

    if !all_identical || speedup_check == "fail" {
        std::process::exit(1);
    }
}
