//! Benchmark the tiled all-pairs kernel and record the perf trajectory.
//!
//! Measures `pairwise_sq_distances` over released sketches for a sweep
//! of matrix sizes, thread counts, tile sizes, and **kernel versions**
//! (`v1-scalar` / `v2-simd`), verifies every configuration is
//! bit-identical to its kernel's sequential reference, and writes a
//! machine-readable `BENCH_pairwise.json` so successive PRs can track
//! ns/pair.
//!
//! Usage: `bench_pairwise [--quick] [--out <path>]`
//!
//! Two acceptance checks gate the exit code on any host:
//!
//! * bit identity within each kernel version, and
//! * the SIMD kernel beating the scalar one: single-thread `v2-simd`
//!   must run at ≤ 0.75× the `v1-scalar` ns/pair. This check is
//!   **thread-count independent** — it measures vectorization, not
//!   parallelism — so it runs (and gates) even on 1-CPU containers
//!   where the multi-thread speedup check below is skipped.
//!
//! The thread speedup check (≥2× at 4 threads for n ≥ 512) still only
//! runs when the host actually has ≥ 4 hardware threads; single-core
//! hosts record the measurement and mark that check skipped.
//!
//! The run also records the **f32 wire quantization experiment**: every
//! sketch is round-tripped through the v3 (`f32` values) wire frame and
//! the quantized pairwise estimates are compared against the
//! full-precision ones and against the true squared distances — the
//! observed quantization shift is set against the rounding-model
//! prediction, and the relative estimation error is set against the
//! configured `alpha` (the paper's `(1±α)` multiplicative bound).

use dp_bench::runner::time_per_op;
use dp_bench::workload::gaussian_vec;
use dp_core::config::SketchConfig;
use dp_core::json::JsonValue;
use dp_core::kernel;
use dp_core::sketcher::{
    pairwise_sq_distances_reference, pairwise_sq_distances_with_par, AnySketcher, Construction,
    PrivateSketcher,
};
use dp_core::{wire, KernelId, NoisySketch, Parallelism};
use dp_hashing::Seed;

struct Measurement {
    rows: usize,
    threads: usize,
    tile: usize,
    kernel: KernelId,
    ns_per_pair: f64,
    speedup_vs_single: f64,
}

/// One N(0,1) row per index, from the shared workload generator e5 also
/// uses, so benches stay comparable across the harness.
fn gaussian_rows(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|r| gaussian_vec(d, Seed::new(seed + r as u64)))
        .collect()
}

/// The f32 wire round-trip: what a sketch's values look like after v3
/// framing (each coordinate rounded to the nearest `f32`, widened back).
fn quantize(s: &NoisySketch) -> NoisySketch {
    let values: Vec<f64> = s.values().iter().map(|&v| f64::from(v as f32)).collect();
    NoisySketch::new(
        values,
        s.transform_tag().to_string(),
        s.noise_second_moment(),
        s.noise_fourth_moment(),
    )
}

/// The f32 quantization variance experiment over `rows.len()` original
/// vectors and their released sketches. Returns the JSON record.
fn quantization_experiment(rows: &[Vec<f64>], sketches: &[NoisySketch], alpha: f64) -> JsonValue {
    let n = rows.len().min(sketches.len());
    let quantized: Vec<NoisySketch> = sketches[..n].iter().map(quantize).collect();
    // Rounding model: round-to-nearest f32 has relative error within
    // u = 2^-24, modeled uniform — per-coordinate variance u²v²/3. The
    // estimate shift Σ(a−b+δ)² − Σ(a−b)² linearizes to Σ 2(a−b)(δa−δb),
    // predicted variance Σ 4d²·u²(a² + b²)/3.
    let u = 2.0f64.powi(-24);
    let mut sum_sq_shift = 0.0f64;
    let mut sum_pred_var = 0.0f64;
    let mut rel_err_full = 0.0f64;
    let mut rel_err_quant = 0.0f64;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let true_sq: f64 = rows[i]
                .iter()
                .zip(&rows[j])
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            let full = sketches[i]
                .estimate_sq_distance(&sketches[j])
                .expect("compatible");
            let quant = quantized[i]
                .estimate_sq_distance(&quantized[j])
                .expect("compatible");
            sum_sq_shift += (quant - full) * (quant - full);
            let pred: f64 = sketches[i]
                .values()
                .iter()
                .zip(sketches[j].values())
                .map(|(a, b)| {
                    let d = a - b;
                    4.0 * d * d * u * u * (a * a + b * b) / 3.0
                })
                .sum();
            sum_pred_var += pred;
            rel_err_full += ((full - true_sq) / true_sq).abs();
            rel_err_quant += ((quant - true_sq) / true_sq).abs();
            pairs += 1;
        }
    }
    let p = pairs as f64;
    let observed_rms = (sum_sq_shift / p).sqrt();
    let predicted_rms = (sum_pred_var / p).sqrt();
    let mean_rel_full = rel_err_full / p;
    let mean_rel_quant = rel_err_quant / p;
    println!(
        "quantization: {pairs} pairs  shift rms observed {observed_rms:.3e}  \
         predicted {predicted_rms:.3e}  (ratio {:.2})",
        observed_rms / predicted_rms
    );
    println!(
        "quantization: mean |rel err| vs true distance: full {mean_rel_full:.4}  \
         f32 {mean_rel_quant:.4}  (paper alpha = {alpha})"
    );
    JsonValue::Object(vec![
        ("pairs".to_string(), JsonValue::UInt(pairs as u64)),
        ("alpha".to_string(), JsonValue::Number(alpha)),
        (
            "shift_rms_observed".to_string(),
            JsonValue::Number(observed_rms),
        ),
        (
            "shift_rms_predicted".to_string(),
            JsonValue::Number(predicted_rms),
        ),
        (
            "mean_rel_err_full".to_string(),
            JsonValue::Number(mean_rel_full),
        ),
        (
            "mean_rel_err_f32".to_string(),
            JsonValue::Number(mean_rel_quant),
        ),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_pairwise.json", String::as_str);

    let d = 256;
    let alpha = 0.3;
    let cfg = SketchConfig::builder()
        .input_dim(d)
        .alpha(alpha)
        .beta(0.1)
        .epsilon(1.0)
        .build()
        .expect("config");
    let sketcher = AnySketcher::new(Construction::SjltAuto, &cfg, Seed::new(7)).expect("sketcher");
    let k = sketcher.k();
    let tag_len = sketcher.tag().len();
    let hardware = Parallelism::new(0).threads();
    println!("== bench_pairwise: tiled all-pairs kernel ==");
    println!(
        "d = {d}, k = {k}, hardware threads = {hardware}, v2 backend = {}",
        kernel::v2_backend()
    );

    let row_counts: &[usize] = if quick { &[64, 128] } else { &[128, 512] };
    let mut thread_sweep = vec![1usize, 2, 4, hardware];
    thread_sweep.sort_unstable();
    thread_sweep.dedup();
    let tile = Parallelism::from_env().tile();
    let kernels = [KernelId::V1Scalar, KernelId::V2Simd];

    let max_rows = *row_counts.iter().max().expect("nonempty");
    let rows = gaussian_rows(max_rows, d, 42);
    let sketches = sketcher.sketch_batch(&rows, Seed::new(99)).expect("batch");

    let mut measurements: Vec<Measurement> = Vec::new();
    let mut all_identical = true;
    // Single-thread ns/pair per kernel at the largest n — the inputs to
    // the kernel acceptance check.
    let mut t1_by_kernel = [f64::NAN; 2];
    for &n in row_counts {
        let subset = &sketches[..n];
        let pairs = (n * (n - 1) / 2) as f64;
        let reference = pairwise_sq_distances_reference(subset).expect("reference");
        // Hoisting gain: the tiled single-thread kernel vs the naive
        // per-pair estimator (which re-checks compatibility and
        // recomputes the debias constant for every pair).
        let iters = if quick { 2 } else { 3 };
        let t_naive = time_per_op(iters, || {
            let _ = pairwise_sq_distances_reference(subset).expect("reference");
        });
        let mut t_single_v1 = f64::NAN;
        for (ki, &kid) in kernels.iter().enumerate() {
            // Within-kernel reference: V1 is pinned to the historic
            // naive estimator bits; V2's anchor is its own sequential
            // single-thread run.
            let kernel_reference = if kid == KernelId::V1Scalar {
                reference.clone()
            } else {
                pairwise_sq_distances_with_par(
                    subset,
                    |s| s,
                    &Parallelism::sequential().with_kernel(kid),
                )
                .expect("pairwise")
            };
            let mut t_single = f64::NAN;
            for &threads in &thread_sweep {
                let par = Parallelism::new(threads).with_tile(tile).with_kernel(kid);
                let got = pairwise_sq_distances_with_par(subset, |s| s, &par).expect("pairwise");
                let identical = got
                    .as_flat()
                    .iter()
                    .zip(kernel_reference.as_flat())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                all_identical &= identical;
                let t = time_per_op(iters, || {
                    let _ = pairwise_sq_distances_with_par(subset, |s| s, &par).expect("pairwise");
                });
                if threads == 1 {
                    t_single = t;
                    if kid == KernelId::V1Scalar {
                        t_single_v1 = t;
                    }
                    if n == max_rows {
                        t1_by_kernel[ki] = t;
                    }
                }
                measurements.push(Measurement {
                    rows: n,
                    threads,
                    tile,
                    kernel: kid,
                    ns_per_pair: t / pairs,
                    speedup_vs_single: t_single / t,
                });
                println!(
                    "n = {n:5}  kernel = {:9}  threads = {threads:2}  tile = {tile:3}  \
                     {:9.1} ns/pair  speedup {:4.2}x  bit-identical: {identical}",
                    kid.name(),
                    t / pairs,
                    t_single / t
                );
            }
        }
        println!(
            "n = {n:5}  naive reference (per-pair estimator): {:9.1} ns/pair  \
             (tiled 1-thread hoisting gain {:4.2}x)",
            t_naive / pairs,
            t_naive / t_single_v1
        );
    }

    // Acceptance 1 (any host): the SIMD kernel must actually be faster —
    // single-thread v2-simd at ≤ 0.75× the v1-scalar ns/pair on the
    // largest matrix. Vectorization, not parallelism, so no core-count
    // gate: this check cannot be "skipped (available_parallelism = 1)".
    let kernel_ratio = t1_by_kernel[1] / t1_by_kernel[0];
    let kernel_check = if kernel_ratio <= 0.75 {
        println!(
            "CHECK [PASS] v2-simd <= 0.75x v1-scalar ns/pair at 1 thread ({kernel_ratio:.3}x)"
        );
        "pass".to_string()
    } else {
        println!(
            "CHECK [FAIL] v2-simd <= 0.75x v1-scalar ns/pair at 1 thread ({kernel_ratio:.3}x)"
        );
        "fail".to_string()
    };

    // Acceptance 2: ≥2× speedup on ≥4 threads for n ≥ 512 — only
    // meaningful when the hardware can actually run 4 workers.
    let target = measurements
        .iter()
        .filter(|m| m.threads >= 4 && m.rows >= 512 && m.kernel == KernelId::V1Scalar)
        .map(|m| m.speedup_vs_single)
        .fold(f64::NAN, f64::max);
    let speedup_check = if hardware < 4 {
        println!(
            "CHECK [SKIP] >=2x speedup on >=4 threads (host has {hardware} hardware thread(s))"
        );
        format!("skipped (available_parallelism = {hardware})")
    } else if target.is_nan() {
        println!("CHECK [SKIP] >=2x speedup on >=4 threads (no n >= 512 in this sweep)");
        "skipped (no n >= 512 measured; run without --quick)".to_string()
    } else if target >= 2.0 {
        println!("CHECK [PASS] >=2x speedup on >=4 threads for n >= 512 ({target:.2}x)");
        "pass".to_string()
    } else {
        println!("CHECK [FAIL] >=2x speedup on >=4 threads for n >= 512 ({target:.2}x)");
        "fail".to_string()
    };
    println!(
        "CHECK [{}] all configurations bit-identical to their kernel's sequential reference",
        if all_identical { "PASS" } else { "FAIL" }
    );

    let experiment_rows = 64.min(max_rows);
    let experiment = quantization_experiment(&rows[..experiment_rows], &sketches, alpha);

    let json = JsonValue::Object(vec![
        (
            "bench".to_string(),
            JsonValue::String("pairwise_sq_distances".to_string()),
        ),
        (
            "construction".to_string(),
            JsonValue::String(Construction::SjltAuto.name().to_string()),
        ),
        ("d".to_string(), JsonValue::UInt(d as u64)),
        ("k".to_string(), JsonValue::UInt(k as u64)),
        (
            "available_parallelism".to_string(),
            JsonValue::UInt(hardware as u64),
        ),
        (
            "v2_backend".to_string(),
            JsonValue::String(kernel::v2_backend().to_string()),
        ),
        (
            "bytes_per_sketch_f64".to_string(),
            JsonValue::UInt(wire::encoded_len(tag_len, k) as u64),
        ),
        (
            "bytes_per_sketch_f32".to_string(),
            JsonValue::UInt(wire::encoded_len_f32(tag_len, k) as u64),
        ),
        ("bit_identical".to_string(), JsonValue::Bool(all_identical)),
        (
            "kernel_check".to_string(),
            JsonValue::String(kernel_check.clone()),
        ),
        (
            "kernel_ns_per_pair_ratio_v2_over_v1".to_string(),
            JsonValue::Number(kernel_ratio),
        ),
        (
            "speedup_check".to_string(),
            JsonValue::String(speedup_check.clone()),
        ),
        ("quantization_experiment".to_string(), experiment),
        (
            "results".to_string(),
            JsonValue::Array(
                measurements
                    .iter()
                    .map(|m| {
                        JsonValue::Object(vec![
                            ("rows".to_string(), JsonValue::UInt(m.rows as u64)),
                            ("k".to_string(), JsonValue::UInt(k as u64)),
                            (
                                "kernel".to_string(),
                                JsonValue::String(m.kernel.name().to_string()),
                            ),
                            ("threads".to_string(), JsonValue::UInt(m.threads as u64)),
                            ("tile".to_string(), JsonValue::UInt(m.tile as u64)),
                            ("ns_per_pair".to_string(), JsonValue::Number(m.ns_per_pair)),
                            (
                                "speedup_vs_single".to_string(),
                                JsonValue::Number(m.speedup_vs_single),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(out_path, json.to_string() + "\n").expect("write BENCH_pairwise.json");
    println!("wrote {out_path}");

    if !all_identical || speedup_check == "fail" || kernel_check == "fail" {
        std::process::exit(1);
    }
}
