//! Harness binary for `dp_bench::experiments::e11_jl_accuracy`.
//! Usage: `exp_jl_accuracy [--quick]` (--quick shrinks Monte-Carlo sizes 10x).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 0.1 } else { 1.0 };
    let ok = dp_bench::experiments::e11_jl_accuracy::run(scale);
    std::process::exit(i32::from(!ok));
}
