//! Harness binary for `dp_bench::experiments::e3_fjlt_input_dim`.
//! Usage: `exp_fjlt_input_dim [--quick]` (--quick shrinks Monte-Carlo sizes 10x).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 0.1 } else { 1.0 };
    let ok = dp_bench::experiments::e3_fjlt_input_dim::run(scale);
    std::process::exit(i32::from(!ok));
}
