//! Benchmark the sharded all-pairs pipeline against the local kernel.
//!
//! Spins up 1/2/4 worker `dp-server`s plus a coordinator over unix
//! sockets (in-process threads — the protocol and gather costs are
//! real, the network is a loopback socket), ingests one batch of
//! releases through the coordinator, and times the full all-pairs
//! matrix three ways per shard count:
//!
//! * **local** — the in-process tiled kernel (`QueryEngine::pairwise`).
//! * **coordinator** — `Pairwise([])` against the coordinator: shard
//!   the plan, `ExecuteTiles` per worker, gather by tile id, one
//!   response frame back.
//!
//! Every coordinator answer is verified **bit-identical** to the local
//! matrix before timing. On a single-core host the sharded path is
//! expected to *lose* (same arithmetic plus framing and scatter); the
//! point of the record is the trajectory — per-shard overhead now,
//! multi-host speedup when real hardware is behind the sockets. Writes
//! machine-readable `BENCH_shard.json`.
//!
//! Usage: `bench_shard [--quick] [--out <path>]`

use dp_bench::runner::time_per_op;
use dp_bench::workload::gaussian_vec;
use dp_core::config::SketchConfig;
use dp_core::json::JsonValue;
use dp_core::release::Release;
use dp_core::sketcher::{Construction, PrivateSketcher, SketcherSpec};
use dp_core::wire;
use dp_engine::{QueryEngine, SketchStore};
use dp_hashing::Seed;
use dp_server::{Client, CoordinatorConfig, Endpoint, Server, WorkerEntry};
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Measurement {
    shards: usize,
    ns_per_pair_local: f64,
    /// The cold sharded query: plan, fan-out, gather, one response.
    ns_per_pair_sharded: f64,
    /// A repeated query on the unchanged store (the gathered-matrix
    /// memo answers; no worker I/O).
    ns_per_pair_warm: f64,
    sharded_over_local: f64,
}

struct GrowthMeasurement {
    rows_before: usize,
    rows_after: usize,
    frontier_tiles: u64,
    plan_tiles: u64,
    ns_per_pair_incremental: f64,
    ns_per_pair_full: f64,
    incremental_over_full: f64,
}

struct ResyncMeasurement {
    /// Rows the revived replica had to recover.
    rows: usize,
    /// Journal frames replayed row-by-row during the revival.
    replayed_frames: u64,
    /// Streamed snapshot installs during the revival (0 = cold replay).
    snapshot_installs: u64,
    /// Wall time of the reviving query, µs (one shot — includes the
    /// reconnect, the resync, and the full gather).
    us_reviving_query: f64,
}

fn scratch_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dp-bench-shard-{tag}-{}.sock", std::process::id()))
}

/// Spin up `shards` workers plus a coordinator, run `body` against the
/// coordinator endpoint, wind everything down.
fn with_coordinator<T>(
    tag: &str,
    shards: usize,
    shard_tile: usize,
    body: impl FnOnce(&mut Client, &Server) -> T,
) -> T {
    let workers: Vec<(Server, Endpoint, PathBuf)> = (0..shards)
        .map(|w| {
            let socket = scratch_socket(&format!("{tag}-w{w}"));
            let endpoint = Endpoint::Unix(socket.clone());
            let server = Server::bind(endpoint.clone(), QueryEngine::new(SketchStore::adopting()))
                .expect("bind worker");
            (server, endpoint, socket)
        })
        .collect();
    let coord_socket = scratch_socket(&format!("{tag}-coord"));
    let coord_endpoint = Endpoint::Unix(coord_socket.clone());
    let timeout = Duration::from_secs(120);
    let pool: Vec<WorkerEntry> = workers
        .iter()
        .map(|(_, endpoint, _)| {
            let client = Client::connect(endpoint).expect("connect worker");
            client.set_read_timeout(Some(timeout)).expect("timeout");
            WorkerEntry::reconnectable(client, endpoint.clone(), Some(timeout))
        })
        .collect();
    let coordinator = Server::bind_coordinator(
        coord_endpoint.clone(),
        QueryEngine::new(SketchStore::adopting()),
        pool,
        shard_tile,
    )
    .expect("bind coordinator");

    let out = std::thread::scope(|scope| {
        for (worker, _, _) in &workers {
            scope.spawn(|| worker.serve(1));
        }
        let hc = scope.spawn(|| coordinator.serve(1));
        let mut client = Client::connect(&coord_endpoint).expect("connect coordinator");
        let out = body(&mut client, &coordinator);
        client.shutdown().expect("shutdown");
        hc.join().expect("coordinator joined");
        out
    });
    for (_, _, socket) in &workers {
        let _ = std::fs::remove_file(socket);
    }
    let _ = std::fs::remove_file(&coord_socket);
    out
}

/// Measure what a worker restart costs under a given compaction
/// threshold: ingest `releases`, cleanly stop worker 0, restart it
/// empty on the same socket, and time the query that revives it —
/// with `compact_threshold` 0 the revival replays the whole journal,
/// with a threshold it installs the compaction snapshot and replays
/// only the suffix. The reviving matrix is verified bit-identical to
/// `expected` before the measurement is trusted.
fn resync_cost(
    tag: &str,
    spec: &SketcherSpec,
    releases: &[Release],
    shard_tile: usize,
    compact_threshold: usize,
    expected: &[f64],
) -> ResyncMeasurement {
    let sock_a = scratch_socket(&format!("{tag}-resync-wa"));
    let sock_b = scratch_socket(&format!("{tag}-resync-wb"));
    let coord_socket = scratch_socket(&format!("{tag}-resync-coord"));
    for s in [&sock_a, &sock_b, &coord_socket] {
        let _ = std::fs::remove_file(s);
    }
    let ep_a = Endpoint::Unix(sock_a.clone());
    let ep_b = Endpoint::Unix(sock_b.clone());
    let coord_endpoint = Endpoint::Unix(coord_socket.clone());
    // Worker A's serve loop polls the shutdown flag on a short conn
    // timeout so the in-process "kill" (a direct Shutdown) completes.
    let worker_a = Server::bind(ep_a.clone(), QueryEngine::new(SketchStore::adopting()))
        .expect("bind worker a")
        .with_conn_timeout(Some(Duration::from_millis(200)));
    let worker_b = Server::bind(ep_b.clone(), QueryEngine::new(SketchStore::adopting()))
        .expect("bind worker b");
    let timeout = Duration::from_secs(120);
    let pool: Vec<WorkerEntry> = [&ep_a, &ep_b]
        .iter()
        .map(|ep| {
            let client = Client::connect(ep).expect("connect worker");
            client.set_read_timeout(Some(timeout)).expect("timeout");
            WorkerEntry::reconnectable(client, (*ep).clone(), Some(timeout))
        })
        .collect();
    let coordinator = Server::bind_coordinator_with(
        coord_endpoint.clone(),
        QueryEngine::new(SketchStore::adopting()),
        pool,
        CoordinatorConfig {
            tile: shard_tile,
            compact_threshold,
            data_dir: None,
        },
    )
    .expect("bind coordinator");

    let out = std::thread::scope(|scope| {
        let ha = scope.spawn(|| worker_a.serve(2));
        scope.spawn(|| worker_b.serve(2));
        let hc = scope.spawn(|| coordinator.serve(1));
        let mut client = Client::connect(&coord_endpoint).expect("connect coordinator");
        client.hello(spec).expect("hello");
        for r in releases {
            client.ingest(r).expect("ingest");
        }
        let direct = Client::connect(&ep_a).expect("connect worker a");
        direct.shutdown().expect("stop worker a");
        ha.join().expect("worker a joined");
        let _ = std::fs::remove_file(&sock_a);
        let worker_a2 = Server::bind(ep_a.clone(), QueryEngine::new(SketchStore::adopting()))
            .expect("rebind worker a");
        let ha2 = scope.spawn(move || worker_a2.serve(2));

        let started = Instant::now();
        let (_, values) = client.pairwise(&[]).expect("reviving pairwise");
        let us = started.elapsed().as_nanos() as f64 / 1_000.0;
        let mut identical = values.len() == expected.len();
        for (a, b) in values.iter().zip(expected) {
            identical &= a.to_bits() == b.to_bits();
        }
        assert!(identical, "reviving query diverged from the local kernel");
        let stats = coordinator.coordinator_stats().expect("coordinator");
        client.shutdown().expect("shutdown");
        hc.join().expect("coordinator joined");
        ha2.join().expect("revived worker joined");
        ResyncMeasurement {
            rows: releases.len(),
            replayed_frames: stats.replayed_frames,
            snapshot_installs: stats.snapshot_installs,
            us_reviving_query: us,
        }
    });
    for s in [&sock_a, &sock_b, &coord_socket] {
        let _ = std::fs::remove_file(s);
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_shard.json", String::as_str);

    let d = 256;
    let rows = if quick { 48 } else { 96 };
    let grow = if quick { 8 } else { 16 };
    let shard_tile = 8;
    let config = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.3)
        .beta(0.1)
        .epsilon(1.0)
        .build()
        .expect("config");
    let spec = SketcherSpec::new(Construction::SjltAuto, config, Seed::new(17));
    let sketcher = spec.build().expect("sketcher");
    let k = sketcher.k();
    let data: Vec<Vec<f64>> = (0..rows + grow)
        .map(|r| gaussian_vec(d, Seed::new(3000 + r as u64)))
        .collect();
    let all_releases: Vec<Release> = sketcher
        .sketch_batch(&data, Seed::new(77))
        .expect("batch")
        .into_iter()
        .enumerate()
        .map(|(i, sketch)| Release {
            party_id: i as u64,
            sketch,
        })
        .collect();
    let releases = &all_releases[..rows];
    let pairs = rows * (rows - 1) / 2;
    println!("== bench_shard: coordinator-sharded vs local all-pairs ==");
    println!(
        "d = {d}, k = {k}, rows = {rows} ({pairs} pairs), shard tile = {shard_tile}, \
         kernel = {}",
        spec.kernel().name()
    );

    // Local reference + baseline timing (fresh tiled kernel per call).
    let mut local_engine = QueryEngine::new(SketchStore::with_spec(spec.clone()).expect("store"));
    for r in releases {
        local_engine.ingest(r).expect("ingest");
    }
    let all_ids: Vec<u64> = local_engine.store().party_ids().to_vec();
    let local_matrix = local_engine.pairwise_all();
    let iters = if quick { 3 } else { 8 };
    let ns_local = time_per_op(iters, || {
        std::hint::black_box(local_engine.pairwise(&all_ids).expect("pairwise"));
    }) / pairs as f64;

    let mut measurements = Vec::new();
    let mut all_identical = true;
    for shards in [1usize, 2, 4] {
        let (ns_sharded, ns_warm, identical) =
            with_coordinator(&format!("s{shards}"), shards, shard_tile, |client, _| {
                client.hello(&spec).expect("hello");
                for r in releases {
                    client.ingest(r).expect("ingest");
                }
                // The cold query (plan → fan-out → gather) is what a
                // growing deployment pays; it also verifies
                // bit-identity against the local engine before any
                // timing is trusted.
                let started = Instant::now();
                let (_, values) = client.pairwise(&[]).expect("sharded pairwise");
                let ns_cold = started.elapsed().as_nanos() as f64 / pairs as f64;
                let mut identical = values.len() == local_matrix.as_flat().len();
                for (a, b) in values.iter().zip(local_matrix.as_flat()) {
                    identical &= a.to_bits() == b.to_bits();
                }
                // Repeats answer from the gathered-matrix memo.
                let ns_warm = time_per_op(iters, || {
                    std::hint::black_box(client.pairwise(&[]).expect("warm pairwise"));
                }) / pairs as f64;
                (ns_cold, ns_warm, identical)
            });

        all_identical &= identical;
        println!(
            "shards = {shards}  local {ns_local:8.1} ns/pair  sharded cold {ns_sharded:8.1} \
             ns/pair ({:5.2}x local)  warm {ns_warm:8.1} ns/pair  bit-identical: {identical}",
            ns_sharded / ns_local,
        );
        measurements.push(Measurement {
            shards,
            ns_per_pair_local: ns_local,
            ns_per_pair_sharded: ns_sharded,
            ns_per_pair_warm: ns_warm,
            sharded_over_local: ns_sharded / ns_local,
        });
    }

    // Growth scenario: ingest-then-requery. The incremental path seeds
    // the coordinator's gather from the cached matrix and re-executes
    // only the frontier tiles; "full" is a cold coordinator computing
    // the same final matrix from scratch. Both verified bit-identical
    // to a local engine over all rows before timing.
    let rows_after = rows + grow;
    let pairs_after = rows_after * (rows_after - 1) / 2;
    let mut grown_engine = QueryEngine::new(SketchStore::with_spec(spec.clone()).expect("store"));
    for r in &all_releases {
        grown_engine.ingest(r).expect("ingest");
    }
    let grown_matrix = grown_engine.pairwise_all();
    let verify = |values: &[f64]| {
        let mut identical = values.len() == grown_matrix.as_flat().len();
        for (a, b) in values.iter().zip(grown_matrix.as_flat()) {
            identical &= a.to_bits() == b.to_bits();
        }
        identical
    };

    let (ns_inc, frontier_tiles, inc_identical) =
        with_coordinator("g-inc", 2, shard_tile, |client, coordinator| {
            client.hello(&spec).expect("hello");
            for r in releases {
                client.ingest(r).expect("ingest");
            }
            // Prime the gather cache at the pre-growth row count.
            client.pairwise(&[]).expect("prime");
            for r in &all_releases[rows..] {
                client.ingest(r).expect("ingest growth");
            }
            let started = Instant::now();
            let (_, values) = client.pairwise(&[]).expect("incremental requery");
            let ns = started.elapsed().as_nanos() as f64 / pairs_after as f64;
            let stats = coordinator.coordinator_stats().expect("coordinator");
            (ns, stats.last_query_tiles, verify(&values))
        });
    let (ns_full, plan_tiles, full_identical) =
        with_coordinator("g-full", 2, shard_tile, |client, coordinator| {
            client.hello(&spec).expect("hello");
            for r in &all_releases {
                client.ingest(r).expect("ingest");
            }
            let started = Instant::now();
            let (_, values) = client.pairwise(&[]).expect("cold full query");
            let ns = started.elapsed().as_nanos() as f64 / pairs_after as f64;
            let stats = coordinator.coordinator_stats().expect("coordinator");
            (ns, stats.last_query_tiles, verify(&values))
        });
    all_identical &= inc_identical && full_identical;
    let growth = GrowthMeasurement {
        rows_before: rows,
        rows_after,
        frontier_tiles,
        plan_tiles,
        ns_per_pair_incremental: ns_inc,
        ns_per_pair_full: ns_full,
        incremental_over_full: ns_inc / ns_full,
    };
    println!(
        "growth +{grow} rows: incremental {ns_inc:8.1} ns/pair ({frontier_tiles} frontier tiles) \
         vs full {ns_full:8.1} ns/pair ({plan_tiles} tiles) — {:.2}x",
        growth.incremental_over_full
    );

    // Resync scenario: what does a worker restart cost? Cold = replay
    // the whole journal row by row; snapshot = install the compacted
    // store snapshot and replay only the suffix. Both revivals verify
    // bit-identity before timing. The snapshot threshold folds the
    // journal exactly at the ingest count, leaving an empty suffix —
    // the best case the compactor aims for.
    let cold = resync_cost(
        "cold",
        &spec,
        releases,
        shard_tile,
        0,
        local_matrix.as_flat(),
    );
    let snap = resync_cost(
        "snap",
        &spec,
        releases,
        shard_tile,
        rows / 3,
        local_matrix.as_flat(),
    );
    println!(
        "resync {rows} rows: cold replay {} frames in {:9.1} µs vs snapshot install \
         ({} install(s), {} suffix frames) in {:9.1} µs",
        cold.replayed_frames,
        cold.us_reviving_query,
        snap.snapshot_installs,
        snap.replayed_frames,
        snap.us_reviving_query,
    );
    let snapshot_resync_wins = snap.snapshot_installs >= 1
        && cold.snapshot_installs == 0
        && snap.replayed_frames < cold.replayed_frames;
    println!(
        "CHECK [{}] snapshot resync replays strictly fewer frames than cold replay",
        if snapshot_resync_wins { "PASS" } else { "FAIL" }
    );

    println!(
        "CHECK [{}] every sharded matrix bit-identical to the local kernel",
        if all_identical { "PASS" } else { "FAIL" }
    );
    let growth_wins = growth.incremental_over_full < 1.0;
    println!(
        "CHECK [{}] incremental growth beats full re-execution on ns/pair",
        if growth_wins { "PASS" } else { "FAIL" }
    );
    println!(
        "NOTE single-host record: shards share one CPU here, so ns/pair measures \
         protocol + gather overhead, not scale-out"
    );

    let json = JsonValue::Object(vec![
        (
            "bench".to_string(),
            JsonValue::String("sharded_pairwise".to_string()),
        ),
        (
            "construction".to_string(),
            JsonValue::String("sjlt-auto".to_string()),
        ),
        ("d".to_string(), JsonValue::UInt(d as u64)),
        ("k".to_string(), JsonValue::UInt(k as u64)),
        ("rows".to_string(), JsonValue::UInt(rows as u64)),
        ("pairs".to_string(), JsonValue::UInt(pairs as u64)),
        ("shard_tile".to_string(), JsonValue::UInt(shard_tile as u64)),
        (
            "kernel".to_string(),
            JsonValue::String(spec.kernel().name().to_string()),
        ),
        (
            "bytes_per_sketch_f64".to_string(),
            JsonValue::UInt(wire::encoded_len(sketcher.tag().len(), k) as u64),
        ),
        (
            "bytes_per_sketch_f32".to_string(),
            JsonValue::UInt(wire::encoded_len_f32(sketcher.tag().len(), k) as u64),
        ),
        ("bit_identical".to_string(), JsonValue::Bool(all_identical)),
        (
            "growth".to_string(),
            JsonValue::Object(vec![
                (
                    "rows_before".to_string(),
                    JsonValue::UInt(growth.rows_before as u64),
                ),
                (
                    "rows_after".to_string(),
                    JsonValue::UInt(growth.rows_after as u64),
                ),
                (
                    "frontier_tiles".to_string(),
                    JsonValue::UInt(growth.frontier_tiles),
                ),
                ("plan_tiles".to_string(), JsonValue::UInt(growth.plan_tiles)),
                (
                    "ns_per_pair_incremental".to_string(),
                    JsonValue::Number(growth.ns_per_pair_incremental),
                ),
                (
                    "ns_per_pair_full".to_string(),
                    JsonValue::Number(growth.ns_per_pair_full),
                ),
                (
                    "incremental_over_full".to_string(),
                    JsonValue::Number(growth.incremental_over_full),
                ),
            ]),
        ),
        (
            "resync".to_string(),
            JsonValue::Object(vec![
                ("rows".to_string(), JsonValue::UInt(cold.rows as u64)),
                (
                    "cold_replayed_frames".to_string(),
                    JsonValue::UInt(cold.replayed_frames),
                ),
                (
                    "us_cold_resync".to_string(),
                    JsonValue::Number(cold.us_reviving_query),
                ),
                (
                    "snapshot_installs".to_string(),
                    JsonValue::UInt(snap.snapshot_installs),
                ),
                (
                    "snapshot_suffix_frames".to_string(),
                    JsonValue::UInt(snap.replayed_frames),
                ),
                (
                    "us_snapshot_resync".to_string(),
                    JsonValue::Number(snap.us_reviving_query),
                ),
                (
                    "snapshot_over_cold".to_string(),
                    JsonValue::Number(snap.us_reviving_query / cold.us_reviving_query),
                ),
            ]),
        ),
        (
            "measurements".to_string(),
            JsonValue::Array(
                measurements
                    .iter()
                    .map(|m| {
                        JsonValue::Object(vec![
                            ("shards".to_string(), JsonValue::UInt(m.shards as u64)),
                            (
                                "ns_per_pair_local".to_string(),
                                JsonValue::Number(m.ns_per_pair_local),
                            ),
                            (
                                "ns_per_pair_sharded".to_string(),
                                JsonValue::Number(m.ns_per_pair_sharded),
                            ),
                            (
                                "ns_per_pair_warm".to_string(),
                                JsonValue::Number(m.ns_per_pair_warm),
                            ),
                            (
                                "sharded_over_local".to_string(),
                                JsonValue::Number(m.sharded_over_local),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(out_path, json.to_string()).expect("write BENCH_shard.json");
    println!("wrote {out_path}");
    if !all_identical {
        std::process::exit(1);
    }
}
