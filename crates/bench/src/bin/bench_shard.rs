//! Benchmark the sharded all-pairs pipeline against the local kernel.
//!
//! Spins up 1/2/4 worker `dp-server`s plus a coordinator over unix
//! sockets (in-process threads — the protocol and gather costs are
//! real, the network is a loopback socket), ingests one batch of
//! releases through the coordinator, and times the full all-pairs
//! matrix three ways per shard count:
//!
//! * **local** — the in-process tiled kernel (`QueryEngine::pairwise`).
//! * **coordinator** — `Pairwise([])` against the coordinator: shard
//!   the plan, `ExecuteTiles` per worker, gather by tile id, one
//!   response frame back.
//!
//! Every coordinator answer is verified **bit-identical** to the local
//! matrix before timing. On a single-core host the sharded path is
//! expected to *lose* (same arithmetic plus framing and scatter); the
//! point of the record is the trajectory — per-shard overhead now,
//! multi-host speedup when real hardware is behind the sockets. Writes
//! machine-readable `BENCH_shard.json`.
//!
//! Usage: `bench_shard [--quick] [--out <path>]`

use dp_bench::runner::time_per_op;
use dp_bench::workload::gaussian_vec;
use dp_core::config::SketchConfig;
use dp_core::json::JsonValue;
use dp_core::release::Release;
use dp_core::sketcher::{Construction, PrivateSketcher, SketcherSpec};
use dp_engine::{QueryEngine, SketchStore};
use dp_hashing::Seed;
use dp_server::{Client, Endpoint, Server};
use std::path::PathBuf;
use std::time::Duration;

struct Measurement {
    shards: usize,
    ns_per_pair_local: f64,
    ns_per_pair_sharded: f64,
    sharded_over_local: f64,
}

fn scratch_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dp-bench-shard-{tag}-{}.sock", std::process::id()))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_shard.json", String::as_str);

    let d = 256;
    let rows = if quick { 48 } else { 96 };
    let shard_tile = 8;
    let config = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.3)
        .beta(0.1)
        .epsilon(1.0)
        .build()
        .expect("config");
    let spec = SketcherSpec::new(Construction::SjltAuto, config, Seed::new(17));
    let sketcher = spec.build().expect("sketcher");
    let k = sketcher.k();
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|r| gaussian_vec(d, Seed::new(3000 + r as u64)))
        .collect();
    let releases: Vec<Release> = sketcher
        .sketch_batch(&data, Seed::new(77))
        .expect("batch")
        .into_iter()
        .enumerate()
        .map(|(i, sketch)| Release {
            party_id: i as u64,
            sketch,
        })
        .collect();
    let pairs = rows * (rows - 1) / 2;
    println!("== bench_shard: coordinator-sharded vs local all-pairs ==");
    println!("d = {d}, k = {k}, rows = {rows} ({pairs} pairs), shard tile = {shard_tile}");

    // Local reference + baseline timing (fresh tiled kernel per call).
    let mut local_engine = QueryEngine::new(SketchStore::with_spec(spec.clone()).expect("store"));
    for r in &releases {
        local_engine.ingest(r).expect("ingest");
    }
    let all_ids: Vec<u64> = local_engine.store().party_ids().to_vec();
    let local_matrix = local_engine.pairwise_all();
    let iters = if quick { 3 } else { 8 };
    let ns_local = time_per_op(iters, || {
        std::hint::black_box(local_engine.pairwise(&all_ids).expect("pairwise"));
    }) / pairs as f64;

    let mut measurements = Vec::new();
    let mut all_identical = true;
    for shards in [1usize, 2, 4] {
        // One worker server per shard, plus the coordinator.
        let workers: Vec<(Server, Endpoint, PathBuf)> = (0..shards)
            .map(|w| {
                let socket = scratch_socket(&format!("w{shards}-{w}"));
                let endpoint = Endpoint::Unix(socket.clone());
                let server =
                    Server::bind(endpoint.clone(), QueryEngine::new(SketchStore::adopting()))
                        .expect("bind worker");
                (server, endpoint, socket)
            })
            .collect();
        let coord_socket = scratch_socket(&format!("coord{shards}"));
        let coord_endpoint = Endpoint::Unix(coord_socket.clone());
        let pool: Vec<Client> = workers
            .iter()
            .map(|(_, endpoint, _)| {
                let client = Client::connect(endpoint).expect("connect worker");
                client
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .expect("timeout");
                client
            })
            .collect();
        let coordinator = Server::bind_coordinator(
            coord_endpoint.clone(),
            QueryEngine::new(SketchStore::adopting()),
            pool,
            shard_tile,
        )
        .expect("bind coordinator");

        let (ns_sharded, identical) = std::thread::scope(|scope| {
            for (worker, _, _) in &workers {
                scope.spawn(|| worker.serve(1));
            }
            let hc = scope.spawn(|| coordinator.serve(1));

            let mut client = Client::connect(&coord_endpoint).expect("connect coordinator");
            client.hello(&spec).expect("hello");
            for r in &releases {
                client.ingest(r).expect("ingest");
            }
            // Verify before timing: the sharded matrix must be
            // bit-identical to the local engine's.
            let (_, values) = client.pairwise(&[]).expect("sharded pairwise");
            let mut identical = values.len() == local_matrix.as_flat().len();
            for (a, b) in values.iter().zip(local_matrix.as_flat()) {
                identical &= a.to_bits() == b.to_bits();
            }
            let ns = time_per_op(iters, || {
                std::hint::black_box(client.pairwise(&[]).expect("sharded pairwise"));
            }) / pairs as f64;
            client.shutdown().expect("shutdown");
            hc.join().expect("coordinator joined");
            (ns, identical)
        });
        for (_, _, socket) in &workers {
            let _ = std::fs::remove_file(socket);
        }
        let _ = std::fs::remove_file(&coord_socket);

        all_identical &= identical;
        println!(
            "shards = {shards}  local {ns_local:8.1} ns/pair  sharded {ns_sharded:8.1} ns/pair \
             ({:5.2}x local, bit-identical: {identical})",
            ns_sharded / ns_local,
        );
        measurements.push(Measurement {
            shards,
            ns_per_pair_local: ns_local,
            ns_per_pair_sharded: ns_sharded,
            sharded_over_local: ns_sharded / ns_local,
        });
    }

    println!(
        "CHECK [{}] every sharded matrix bit-identical to the local kernel",
        if all_identical { "PASS" } else { "FAIL" }
    );
    println!(
        "NOTE single-host record: shards share one CPU here, so ns/pair measures \
         protocol + gather overhead, not scale-out"
    );

    let json = JsonValue::Object(vec![
        (
            "bench".to_string(),
            JsonValue::String("sharded_pairwise".to_string()),
        ),
        (
            "construction".to_string(),
            JsonValue::String("sjlt-auto".to_string()),
        ),
        ("d".to_string(), JsonValue::UInt(d as u64)),
        ("k".to_string(), JsonValue::UInt(k as u64)),
        ("rows".to_string(), JsonValue::UInt(rows as u64)),
        ("pairs".to_string(), JsonValue::UInt(pairs as u64)),
        ("shard_tile".to_string(), JsonValue::UInt(shard_tile as u64)),
        ("bit_identical".to_string(), JsonValue::Bool(all_identical)),
        (
            "measurements".to_string(),
            JsonValue::Array(
                measurements
                    .iter()
                    .map(|m| {
                        JsonValue::Object(vec![
                            ("shards".to_string(), JsonValue::UInt(m.shards as u64)),
                            (
                                "ns_per_pair_local".to_string(),
                                JsonValue::Number(m.ns_per_pair_local),
                            ),
                            (
                                "ns_per_pair_sharded".to_string(),
                                JsonValue::Number(m.ns_per_pair_sharded),
                            ),
                            (
                                "sharded_over_local".to_string(),
                                JsonValue::Number(m.sharded_over_local),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(out_path, json.to_string()).expect("write BENCH_shard.json");
    println!("wrote {out_path}");
    if !all_identical {
        std::process::exit(1);
    }
}
