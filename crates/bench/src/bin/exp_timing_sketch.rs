//! Harness binary for `dp_bench::experiments::e5_timing_sketch`.
//! Usage: `exp_timing_sketch [--quick]` (--quick shrinks Monte-Carlo sizes 10x).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 0.1 } else { 1.0 };
    let ok = dp_bench::experiments::e5_timing_sketch::run(scale);
    std::process::exit(i32::from(!ok));
}
