//! Harness binary for `dp_bench::experiments::e10_sensitivity`.
//! Usage: `exp_sensitivity [--quick]` (--quick shrinks Monte-Carlo sizes 10x).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 0.1 } else { 1.0 };
    let ok = dp_bench::experiments::e10_sensitivity::run(scale);
    std::process::exit(i32::from(!ok));
}
