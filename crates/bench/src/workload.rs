//! Workload generators for the experiments.
//!
//! The paper treats inputs generically (`x, y ∈ R^d`, with `[0,1]^d` and
//! binary/histogram special cases in the related work). These generators
//! cover the shapes the experiments need: dense Gaussian/uniform vectors,
//! binary vectors at controlled Hamming distance, sparse vectors with a
//! fixed support size, histogram (count) vectors, and pairs at an exactly
//! controlled Euclidean distance.

use dp_hashing::{Prng, Seed};
use dp_linalg::SparseVector;
use dp_noise::gaussian::Gaussian;

/// Dense i.i.d. standard-Gaussian vector.
#[must_use]
pub fn gaussian_vec(d: usize, seed: Seed) -> Vec<f64> {
    let g = Gaussian::new(1.0).expect("unit sigma");
    let mut rng = seed.child("wl-gauss").rng();
    let mut out = vec![0.0; d];
    g.fill(&mut out, &mut rng);
    out
}

/// Dense i.i.d. `U[0, 1)` vector (the Kenthapadi input domain).
#[must_use]
pub fn uniform_vec(d: usize, seed: Seed) -> Vec<f64> {
    let mut rng = seed.child("wl-unif").rng();
    (0..d).map(|_| rng.next_f64()).collect()
}

/// Binary vector with exactly `ones` ones in random positions.
///
/// # Panics
/// If `ones > d`.
#[must_use]
pub fn binary_vec(d: usize, ones: usize, seed: Seed) -> Vec<f64> {
    assert!(ones <= d, "ones {ones} > d {d}");
    let mut rng = seed.child("wl-bin").rng();
    let mut out = vec![0.0; d];
    // Partial Fisher–Yates index sampling.
    let mut idx: Vec<usize> = (0..d).collect();
    for t in 0..ones {
        let pick = t + rng.next_range((d - t) as u64) as usize;
        idx.swap(t, pick);
        out[idx[t]] = 1.0;
    }
    out
}

/// Flip exactly `flips` random positions of a binary vector (yielding a
/// pair at exact Hamming distance `flips` from the input).
///
/// # Panics
/// If `flips > x.len()`.
#[must_use]
pub fn flip_bits(x: &[f64], flips: usize, seed: Seed) -> Vec<f64> {
    assert!(flips <= x.len());
    let mut rng = seed.child("wl-flip").rng();
    let mut out = x.to_vec();
    let d = x.len();
    let mut idx: Vec<usize> = (0..d).collect();
    for t in 0..flips {
        let pick = t + rng.next_range((d - t) as u64) as usize;
        idx.swap(t, pick);
        out[idx[t]] = 1.0 - out[idx[t]];
    }
    out
}

/// Sparse vector with exactly `nnz` non-zeros, values `N(0, 1)`.
///
/// # Panics
/// If `nnz > d`.
#[must_use]
pub fn sparse_vec(d: usize, nnz: usize, seed: Seed) -> SparseVector {
    assert!(nnz <= d);
    let g = Gaussian::new(1.0).expect("unit sigma");
    let mut rng = seed.child("wl-sparse").rng();
    let mut idx: Vec<usize> = (0..d).collect();
    let mut entries = Vec::with_capacity(nnz);
    for t in 0..nnz {
        let pick = t + rng.next_range((d - t) as u64) as usize;
        idx.swap(t, pick);
        let mut v = g.sample(&mut rng);
        if v == 0.0 {
            v = 1.0;
        }
        entries.push((idx[t], v));
    }
    SparseVector::new(d, entries).expect("indices in range")
}

/// Histogram vector: `total` items thrown into `d` buckets uniformly
/// (the paper's Definition 1 motivation: one user changes ‖x‖₁ by 1).
#[must_use]
pub fn histogram_vec(d: usize, total: usize, seed: Seed) -> Vec<f64> {
    let mut rng = seed.child("wl-hist").rng();
    let mut out = vec![0.0; d];
    for _ in 0..total {
        out[rng.next_range(d as u64) as usize] += 1.0;
    }
    out
}

/// A pair `(x, y)` with exactly `‖x − y‖₂² = dist_sq`: `x` Gaussian, `y`
/// offset by a scaled random unit direction.
#[must_use]
pub fn pair_at_distance(d: usize, dist_sq: f64, seed: Seed) -> (Vec<f64>, Vec<f64>) {
    let x = gaussian_vec(d, seed.child("pair-x"));
    let dir = gaussian_vec(d, seed.child("pair-dir"));
    let norm = dp_linalg::vector::l2_norm(&dir);
    let scale = dist_sq.sqrt() / norm;
    let y: Vec<f64> = x.iter().zip(&dir).map(|(a, u)| a + scale * u).collect();
    (x, y)
}

/// The worst-case neighboring pair for sensitivity: `x` arbitrary and
/// `x′ = x + e_j` (`‖x − x′‖₁ = 1`, Definition 1 tight).
#[must_use]
pub fn neighboring_pair(d: usize, j: usize, seed: Seed) -> (Vec<f64>, Vec<f64>) {
    let x = uniform_vec(d, seed.child("nb-x"));
    let mut y = x.clone();
    y[j] += 1.0;
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_linalg::vector::{l0_norm, l1_distance, sq_distance};

    #[test]
    fn binary_vec_exact_ones() {
        let x = binary_vec(100, 37, Seed::new(1));
        assert_eq!(l0_norm(&x), 37);
        assert!(x.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn flip_bits_exact_hamming() {
        let x = binary_vec(200, 50, Seed::new(2));
        let y = flip_bits(&x, 20, Seed::new(3));
        let ham = x.iter().zip(&y).filter(|(a, b)| a != b).count();
        assert_eq!(ham, 20);
    }

    #[test]
    fn sparse_vec_exact_support() {
        let v = sparse_vec(500, 32, Seed::new(4));
        assert_eq!(v.nnz(), 32);
        assert_eq!(v.dim(), 500);
    }

    #[test]
    fn histogram_conserves_mass() {
        let h = histogram_vec(16, 1000, Seed::new(5));
        let total: f64 = h.iter().sum();
        assert_eq!(total, 1000.0);
    }

    #[test]
    fn pair_distance_is_exact() {
        let (x, y) = pair_at_distance(64, 7.5, Seed::new(6));
        assert!((sq_distance(&x, &y) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn neighboring_pair_is_tight() {
        let (x, y) = neighboring_pair(32, 5, Seed::new(7));
        assert!((l1_distance(&x, &y) - 1.0).abs() < 1e-12);
        assert_eq!(x.len(), 32);
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(gaussian_vec(8, Seed::new(9)), gaussian_vec(8, Seed::new(9)));
        assert_ne!(
            gaussian_vec(8, Seed::new(9)),
            gaussian_vec(8, Seed::new(10))
        );
    }
}
