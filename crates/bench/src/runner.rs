//! Shared experiment-running utilities.

use dp_parallel::{par_map, Parallelism};
use dp_stats::Summary;
use std::time::Instant;

/// Monte-Carlo summary of `f(rep)` over `reps` repetitions.
pub fn mc_summary(reps: u64, mut f: impl FnMut(u64) -> f64) -> Summary {
    let mut s = Summary::new();
    for rep in 0..reps {
        s.push(f(rep));
    }
    s
}

/// [`mc_summary`] with the per-rep evaluations computed on `par`
/// workers. Values are accumulated in rep order, so the summary is
/// bit-identical to the sequential one whenever `f` is a pure function
/// of its rep index (every experiment closure here is: all randomness
/// derives from per-rep seeds).
pub fn mc_summary_par(reps: u64, par: &Parallelism, f: impl Fn(u64) -> f64 + Sync) -> Summary {
    let indices: Vec<u64> = (0..reps).collect();
    let values = par_map(&indices, par.threads(), |_, &rep| f(rep));
    let mut s = Summary::new();
    for v in values {
        s.push(v);
    }
    s
}

/// Median-of-5 wall-clock time per operation, in nanoseconds. `f` runs
/// `iters` times per measurement round after one warm-up round.
pub fn time_per_op(iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters {
        f(); // warm-up
    }
    let mut rounds: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / f64::from(iters)
        })
        .collect();
    rounds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    rounds[2]
}

/// A pass/fail ledger for an experiment binary. Prints `CHECK` lines the
/// run_all driver and EXPERIMENTS.md extraction grep for.
#[derive(Debug, Default)]
pub struct CheckList {
    checks: Vec<(String, bool)>,
}

impl CheckList {
    /// Empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record and print one named check.
    pub fn check(&mut self, name: &str, pass: bool) {
        println!("CHECK [{}] {}", if pass { "PASS" } else { "FAIL" }, name);
        self.checks.push((name.to_string(), pass));
    }

    /// Record a check that a measured value is within `tol_rel` of an
    /// expected value.
    pub fn check_close(&mut self, name: &str, measured: f64, expected: f64, tol_rel: f64) {
        let rel = (measured - expected).abs() / expected.abs().max(f64::MIN_POSITIVE);
        self.check(
            &format!("{name}: measured {measured:.4e} vs expected {expected:.4e} (rel {rel:.3})"),
            rel <= tol_rel,
        );
    }

    /// Whether every check passed.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|(_, p)| *p)
    }

    /// (passed, total).
    #[must_use]
    pub fn tally(&self) -> (usize, usize) {
        (
            self.checks.iter().filter(|(_, p)| *p).count(),
            self.checks.len(),
        )
    }

    /// Print the summary footer and return overall success.
    pub fn finish(&self, experiment: &str) -> bool {
        let (pass, total) = self.tally();
        println!("RESULT {experiment}: {pass}/{total} checks passed");
        self.all_passed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mc_summary_counts() {
        let s = mc_summary(100, |r| r as f64);
        assert_eq!(s.count(), 100);
        assert!((s.mean() - 49.5).abs() < 1e-9);
    }

    #[test]
    fn mc_summary_par_is_bit_identical_to_sequential() {
        let f = |rep: u64| (rep as f64).sin() * (rep as f64 + 0.5).ln();
        let seq = mc_summary(200, f);
        for threads in [1usize, 2, 4, 7] {
            let par = mc_summary_par(200, &Parallelism::new(threads), f);
            assert_eq!(par.count(), seq.count());
            assert_eq!(par.mean().to_bits(), seq.mean().to_bits(), "{threads}");
            assert_eq!(
                par.variance().to_bits(),
                seq.variance().to_bits(),
                "{threads}"
            );
        }
    }

    #[test]
    fn time_per_op_positive() {
        let mut acc = 0u64;
        let t = time_per_op(100, || acc = acc.wrapping_add(1));
        assert!(t >= 0.0);
    }

    #[test]
    fn checklist_tally() {
        let mut c = CheckList::new();
        c.check("a", true);
        c.check("b", false);
        c.check_close("c", 1.0, 1.05, 0.1);
        assert_eq!(c.tally(), (2, 3));
        assert!(!c.all_passed());
        assert!(!c.finish("test"));
    }
}
