//! Experiment harness regenerating every quantitative claim of the paper.
//!
//! The paper has no empirical tables or figures; its evaluation is the set
//! of theorem statements and the §7 analytic comparison. DESIGN.md
//! enumerates those claims as experiments E1–E13; each module under
//! [`experiments`] regenerates one of them and prints paper-expected vs
//! measured rows. The `exp_*` binaries are thin wrappers; `run_all` runs
//! the full suite.

pub mod experiments;
pub mod runner;
pub mod workload;

pub use runner::{mc_summary, time_per_op, CheckList};
