//! Criterion benches for the fast Walsh-Hadamard transform (the FJLT's
//! O(d log d) core).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dp_bench::workload::gaussian_vec;
use dp_hashing::Seed;
use dp_linalg::hadamard::fwht_normalized;

fn bench_fwht(c: &mut Criterion) {
    let mut group = c.benchmark_group("fwht");
    for d in [1usize << 10, 1 << 14, 1 << 16] {
        let x = gaussian_vec(d, Seed::new(d as u64));
        group.throughput(Throughput::Elements(d as u64));
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            let mut buf = x.clone();
            b.iter(|| {
                fwht_normalized(&mut buf).expect("pow2");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fwht);
criterion_main!(benches);
