//! Criterion benches for the sketch wire formats: the versioned binary
//! codec versus the JSON compatibility path, plus tag-interned decoding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dp_core::config::SketchConfig;
use dp_core::estimator::NoisySketch;
use dp_core::sketcher::{AnySketcher, Construction, PrivateSketcher};
use dp_core::wire::{
    decode_sketch, decode_sketch_interned, encode_sketch, encode_sketch_f32, TagInterner,
};
use dp_hashing::Seed;

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    for alpha in [0.3f64, 0.1] {
        let d = 1 << 10;
        let cfg = SketchConfig::builder()
            .input_dim(d)
            .alpha(alpha)
            .beta(0.05)
            .epsilon(1.0)
            .build()
            .expect("config");
        let sk = AnySketcher::new(Construction::SjltAuto, &cfg, Seed::new(1)).expect("sjlt");
        let sketch = sk.sketch(&vec![1.0; d], Seed::new(2)).expect("sketch");
        let bytes = encode_sketch(&sketch).expect("encode");
        let json = sketch.to_json();
        group.throughput(Throughput::Bytes(bytes.len() as u64));

        group.bench_with_input(
            BenchmarkId::new("encode_binary", sk.k()),
            &sk.k(),
            |b, _| {
                b.iter(|| encode_sketch(&sketch).expect("encode"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("decode_binary", sk.k()),
            &sk.k(),
            |b, _| {
                b.iter(|| decode_sketch(&bytes).expect("decode"));
            },
        );
        let mut interner = TagInterner::new();
        group.bench_with_input(
            BenchmarkId::new("decode_interned", sk.k()),
            &sk.k(),
            |b, _| {
                b.iter(|| decode_sketch_interned(&bytes, &mut interner).expect("decode"));
            },
        );
        // The quantized v3 framing: half the value bytes on the wire.
        let bytes_f32 = encode_sketch_f32(&sketch).expect("encode f32");
        group.bench_with_input(
            BenchmarkId::new("encode_binary_f32", sk.k()),
            &sk.k(),
            |b, _| {
                b.iter(|| encode_sketch_f32(&sketch).expect("encode f32"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("decode_binary_f32", sk.k()),
            &sk.k(),
            |b, _| {
                b.iter(|| decode_sketch(&bytes_f32).expect("decode f32"));
            },
        );
        group.bench_with_input(BenchmarkId::new("encode_json", sk.k()), &sk.k(), |b, _| {
            b.iter(|| sketch.to_json());
        });
        group.bench_with_input(BenchmarkId::new("decode_json", sk.k()), &sk.k(), |b, _| {
            b.iter(|| NoisySketch::from_json(&json).expect("decode"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
