//! Criterion benches for the noise samplers, including the exact discrete
//! samplers of Section 2.3.1 (their rejection loops cost more than the
//! continuous inverse-CDF paths; this quantifies the overhead).

use criterion::{criterion_group, criterion_main, Criterion};
use dp_hashing::Seed;
use dp_noise::discrete_gaussian::DiscreteGaussian;
use dp_noise::discrete_laplace::DiscreteLaplace;
use dp_noise::gaussian::Gaussian;
use dp_noise::laplace::Laplace;
use dp_noise::snapping::Snapping;

fn bench_noise(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_sample");
    let mut rng = Seed::new(1).rng();

    let lap = Laplace::new(2.0).expect("scale");
    group.bench_function("laplace", |b| b.iter(|| lap.sample(&mut rng)));

    let gau = Gaussian::new(2.0).expect("sigma");
    group.bench_function("gaussian", |b| b.iter(|| gau.sample(&mut rng)));

    let dlap = DiscreteLaplace::new(2.0).expect("scale");
    group.bench_function("discrete_laplace", |b| b.iter(|| dlap.sample(&mut rng)));

    let dgau = DiscreteGaussian::new(2.0).expect("sigma");
    group.bench_function("discrete_gaussian", |b| b.iter(|| dgau.sample(&mut rng)));

    let snap = Snapping::new(2.0, 1e6).expect("params");
    group.bench_function("snapping", |b| b.iter(|| snap.release(1.0, &mut rng)));

    group.finish();
}

criterion_group!(benches, bench_noise);
criterion_main!(benches);
