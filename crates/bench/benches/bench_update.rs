//! Criterion benches for turnstile updates (E6's micro counterpart):
//! O(s) SJLT updates vs O(k) dense updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_hashing::{Prng, Seed};
use dp_stream::StreamingSketch;
use dp_transforms::gaussian_iid::GaussianIid;
use dp_transforms::sjlt::Sjlt;

fn bench_update(c: &mut Criterion) {
    let d = 1 << 12;
    let mut group = c.benchmark_group("turnstile_update");
    for k in [256usize, 4096] {
        let mut sjlt_stream = StreamingSketch::new(
            Sjlt::new_cached(d, k, 8, 6, Seed::new(1)).expect("sjlt"),
            "sjlt".into(),
        );
        let mut rng = Seed::new(2).rng();
        group.bench_with_input(BenchmarkId::new("sjlt_s8", k), &k, |b, _| {
            b.iter(|| {
                let j = rng.next_range(d as u64) as usize;
                sjlt_stream.update(j, 1.0).expect("update");
            });
        });
        let mut dense_stream = StreamingSketch::new(
            GaussianIid::new(d, k, Seed::new(1)).expect("iid"),
            "iid".into(),
        );
        group.bench_with_input(BenchmarkId::new("dense", k), &k, |b, _| {
            b.iter(|| {
                let j = rng.next_range(d as u64) as usize;
                dense_stream.update(j, 1.0).expect("update");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update);
criterion_main!(benches);
