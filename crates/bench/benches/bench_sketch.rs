//! Criterion benches for sketch application across transform families
//! (E5's micro counterpart; one bench group per input dimension).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dp_bench::workload::{gaussian_vec, sparse_vec};
use dp_hashing::Seed;
use dp_transforms::fjlt::Fjlt;
use dp_transforms::gaussian_iid::GaussianIid;
use dp_transforms::sjlt::Sjlt;
use dp_transforms::{JlParams, LinearTransform};

fn bench_sketch(c: &mut Criterion) {
    let params = JlParams::new(0.25, 0.05).expect("params");
    let (k, s, t) = (params.k_for_sjlt(), params.s(), params.independence());
    let mut group = c.benchmark_group("sketch_apply");
    for d in [1usize << 10, 1 << 13] {
        let x = gaussian_vec(d, Seed::new(d as u64));
        let xs = sparse_vec(d, 64, Seed::new(d as u64 + 1));
        let mut out = vec![0.0; k];
        group.throughput(Throughput::Elements(d as u64));

        let sjlt = Sjlt::new_cached(d, k, s, t, Seed::new(1)).expect("sjlt");
        group.bench_with_input(BenchmarkId::new("sjlt_cached", d), &d, |b, _| {
            b.iter(|| sjlt.apply_into(&x, &mut out).expect("apply"));
        });
        let sjlt_h = Sjlt::new(d, k, s, t, Seed::new(1)).expect("sjlt");
        group.bench_with_input(BenchmarkId::new("sjlt_hashed", d), &d, |b, _| {
            b.iter(|| sjlt_h.apply_into(&x, &mut out).expect("apply"));
        });
        group.bench_with_input(BenchmarkId::new("sjlt_sparse64", d), &d, |b, _| {
            b.iter(|| sjlt.apply_sparse(&xs).expect("apply"));
        });
        let fjlt = Fjlt::new(d, k, &params, Seed::new(1)).expect("fjlt");
        group.bench_with_input(BenchmarkId::new("fjlt", d), &d, |b, _| {
            b.iter(|| fjlt.apply_into(&x, &mut out).expect("apply"));
        });
        if d <= 1 << 12 {
            let iid = GaussianIid::new(d, k, Seed::new(1)).expect("iid");
            group.bench_with_input(BenchmarkId::new("gaussian_iid", d), &d, |b, _| {
                b.iter(|| iid.apply_into(&x, &mut out).expect("apply"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sketch);
criterion_main!(benches);
