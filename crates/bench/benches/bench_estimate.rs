//! Criterion benches for the O(k) estimate path (Theorem 3, item 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_core::config::SketchConfig;
use dp_core::sjlt_private::PrivateSjlt;
use dp_hashing::Seed;

fn bench_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate_sq_distance");
    for (alpha, label) in [(0.3f64, "k~small"), (0.1, "k~large")] {
        let d = 1 << 10;
        let cfg = SketchConfig::builder()
            .input_dim(d)
            .alpha(alpha)
            .beta(0.05)
            .epsilon(1.0)
            .build()
            .expect("config");
        let sk = PrivateSjlt::new(&cfg, Seed::new(1)).expect("sjlt");
        let x = vec![1.0; d];
        let y = vec![0.5; d];
        let a = sk.sketch(&x, Seed::new(2));
        let b = sk.sketch(&y, Seed::new(3));
        group.bench_with_input(
            BenchmarkId::new(label, sk.k()),
            &sk.k(),
            |bench, _| bench.iter(|| sk.estimate_sq_distance(&a, &b)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_estimate);
criterion_main!(benches);
