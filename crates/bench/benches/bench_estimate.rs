//! Criterion benches for the O(k) estimate path (Theorem 3, item 5),
//! driven through the unified `PrivateSketcher` trait so every
//! construction exercises the identical release/estimate surface.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_core::config::SketchConfig;
use dp_core::sketcher::{AnySketcher, Construction, PrivateSketcher};
use dp_hashing::Seed;

fn bench_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate_sq_distance");
    for (alpha, label) in [(0.3f64, "k~small"), (0.1, "k~large")] {
        let d = 1 << 10;
        let cfg = SketchConfig::builder()
            .input_dim(d)
            .alpha(alpha)
            .beta(0.05)
            .epsilon(1.0)
            .build()
            .expect("config");
        let sk = AnySketcher::new(Construction::SjltAuto, &cfg, Seed::new(1)).expect("sjlt");
        let x = vec![1.0; d];
        let y = vec![0.5; d];
        let a = sk.sketch(&x, Seed::new(2)).expect("sketch");
        let b = sk.sketch(&y, Seed::new(3)).expect("sketch");
        group.bench_with_input(BenchmarkId::new(label, sk.k()), &sk.k(), |bench, _| {
            bench.iter(|| sk.estimate_sq_distance(&a, &b).expect("estimate"))
        });
    }

    // Batch surface: all-pairs over n released sketches (O(n²k)).
    let d = 1 << 10;
    let cfg = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.3)
        .beta(0.05)
        .epsilon(1.0)
        .build()
        .expect("config");
    let sk = AnySketcher::new(Construction::SjltAuto, &cfg, Seed::new(7)).expect("sjlt");
    for n in [8usize, 32] {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..d).map(|j| ((i + j) % 5) as f64).collect())
            .collect();
        let sketches = sk.sketch_batch(&rows, Seed::new(9)).expect("batch");
        group.bench_with_input(BenchmarkId::new("pairwise", n), &n, |bench, _| {
            bench.iter(|| dp_core::sketcher::pairwise_sq_distances(&sketches).expect("pairwise"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimate);
criterion_main!(benches);
