//! Deterministic randomness and limited-independence hashing.
//!
//! The distributed protocol of Stausholm (PODS 2021) requires the random
//! projection `S` to be **public**: every party must be able to rebuild the
//! exact same matrix from a shared seed, while the noise streams stay
//! private. That forces two properties on our randomness substrate:
//!
//! 1. **Determinism and splittability** — a root seed deterministically
//!    derives independent named sub-streams ([`seed::Seed`]), so "the
//!    transform stream" and "party 7's noise stream" never collide.
//! 2. **Limited independence** — the Kane–Nelson sparser JL transforms are
//!    analyzed under `O(log(1/β))`-wise independent hash families, which we
//!    instantiate as degree-`t` polynomials over the Mersenne-prime field
//!    GF(2⁶¹−1) ([`kwise`]).
//!
//! We deliberately do not depend on `rand` in library code: a DP library
//! must be able to audit every bit of randomness it consumes (Mironov,
//! CCS 2012), and the hand-rolled generators here are small enough to read.

pub mod field;
pub mod kwise;
pub mod prng;
pub mod seed;

pub use field::M61;
pub use kwise::{KWiseFamily, PolyHash, SignHash};
pub use prng::{Prng, SplitMix64, Xoshiro256pp};
pub use seed::Seed;
