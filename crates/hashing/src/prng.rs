//! Minimal deterministic pseudo-random generators.
//!
//! [`SplitMix64`] is used for seed expansion/mixing (its output function is
//! a strong 64-bit finalizer), and [`Xoshiro256pp`] is the workhorse stream
//! generator. Both are tiny, portable, and produce identical sequences on
//! every platform — a requirement for the *public* projection matrices of
//! the distributed protocol.

/// A deterministic stream of pseudo-random numbers.
///
/// Only [`Prng::next_u64`] is required; the remaining methods are derived
/// and documented with their exact distributions so that downstream noise
/// samplers can reason about them.
pub trait Prng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next 32-bit output (upper half of a 64-bit draw).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in the half-open interval `[0, 1)` with 53 random bits.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits: mantissa-many uniform bits, then scale.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the **open** interval `(0, 1)`.
    ///
    /// Inverse-CDF samplers (Laplace, exponential) must never see an exact
    /// 0.0 or 1.0, which would map to ±∞.
    #[inline]
    fn next_open_f64(&mut self) -> f64 {
        // (i + 0.5) / 2^53 for i in [0, 2^53): symmetric, never 0 or 1.
        ((self.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` without modulo bias
    /// (Lemire's multiply-shift rejection method).
    #[inline]
    fn next_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_range bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Fair coin.
    #[inline]
    fn next_bool(&mut self) -> bool {
        // Use the top bit; low bits of some generators are weaker.
        self.next_u64() >> 63 == 1
    }

    /// Uniform sign in `{-1.0, +1.0}`.
    #[inline]
    fn next_sign(&mut self) -> f64 {
        if self.next_bool() {
            1.0
        } else {
            -1.0
        }
    }
}

/// SplitMix64 (Steele, Lea & Flood): a 64-bit LCG-like generator whose
/// output function is a high-quality avalanche mix. Used here to expand a
/// single `u64` seed into generator state and to derive child seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a raw seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The stateless mixing (finalization) function. Useful to hash small
    /// labels into seeds deterministically.
    #[must_use]
    #[inline]
    pub fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Prng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        Self::mix(self.state)
    }
}

/// xoshiro256++ (Blackman & Vigna, 2019): 256-bit state, period 2²⁵⁶−1,
/// passes BigCrush. The library's workhorse generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed via SplitMix64 expansion, as recommended by the authors.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is a fixed point; SplitMix64 expansion of any
        // seed cannot produce it, but guard anyway for the from-parts path.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Self { s }
    }

    /// Construct from raw state words (must not be all zero).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "xoshiro state must be non-zero");
        Self { s }
    }

    /// The 2¹²⁸-step jump, giving 2¹²⁸ non-overlapping subsequences.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut acc = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j >> b) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                let _ = self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl Prng for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut g = SplitMix64::new(1234567);
        let first = g.next_u64();
        let mut g2 = SplitMix64::new(1234567);
        assert_eq!(first, g2.next_u64(), "determinism");
        // Mixing is a bijection: distinct inputs map to distinct outputs.
        assert_ne!(SplitMix64::mix(1), SplitMix64::mix(2));
    }

    #[test]
    fn xoshiro_determinism_and_divergence() {
        let mut a = Xoshiro256pp::seeded(42);
        let mut b = Xoshiro256pp::seeded(42);
        let mut c = Xoshiro256pp::seeded(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = Xoshiro256pp::seeded(7);
        for _ in 0..10_000 {
            let u = g.next_f64();
            assert!((0.0..1.0).contains(&u));
            let v = g.next_open_f64();
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn next_f64_mean_near_half() {
        let mut g = Xoshiro256pp::seeded(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 5e-3, "mean {mean}");
    }

    #[test]
    fn next_range_unbiased_small_bound() {
        let mut g = Xoshiro256pp::seeded(3);
        let bound = 7u64;
        let mut counts = [0u64; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[g.next_range(bound) as usize] += 1;
        }
        let expect = n as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expect).abs() / expect;
            assert!(rel < 0.05, "bucket {i} count {c} vs {expect}");
        }
    }

    #[test]
    fn next_range_handles_bound_one() {
        let mut g = Xoshiro256pp::seeded(5);
        for _ in 0..100 {
            assert_eq!(g.next_range(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_range_zero_bound_panics() {
        let mut g = Xoshiro256pp::seeded(5);
        let _ = g.next_range(0);
    }

    #[test]
    fn jump_produces_disjoint_prefix() {
        let mut a = Xoshiro256pp::seeded(11);
        let mut b = a.clone();
        b.jump();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn sign_is_balanced() {
        let mut g = Xoshiro256pp::seeded(21);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| g.next_sign()).sum();
        assert!(sum.abs() / f64::from(n) < 0.01, "signed mean {sum}");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256pp::from_state([0; 4]);
    }
}
