//! `t`-wise independent hash families via random polynomials over
//! GF(2⁶¹ − 1).
//!
//! The Kane–Nelson SJLT (paper §6.1) requires hash functions
//! `h_r : [d] → [k/s]` and sign functions `ϕ_r : [d] → {−1, +1}` drawn
//! from `O(log(1/β))`-wise independent families. A uniformly random
//! polynomial of degree `t − 1` over a prime field, evaluated at the key,
//! is the textbook `t`-wise independent family; we map its output to a
//! bucket range with the (negligible-bias) multiply-shift method and to a
//! sign with the low output bit.

use crate::field::{add, mul, M61};
use crate::prng::Prng;
use crate::seed::Seed;

/// A degree-(t−1) polynomial over GF(2⁶¹−1): a `t`-wise independent hash
/// from `u64` keys to field elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyHash {
    /// Coefficients c₀..c_{t−1}; evaluation is Horner's rule.
    coeffs: Vec<u64>,
}

impl PolyHash {
    /// Draw a uniformly random polynomial with `t ≥ 1` coefficients.
    ///
    /// # Panics
    /// If `t == 0`.
    #[must_use]
    pub fn sample<R: Prng>(t: usize, rng: &mut R) -> Self {
        assert!(t >= 1, "independence degree must be at least 1");
        let coeffs = (0..t).map(|_| rng.next_range(M61)).collect();
        Self { coeffs }
    }

    /// The independence degree `t` of the family this was drawn from.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluate the polynomial at `key`, returning a field element in
    /// `[0, 2⁶¹−1)`.
    #[must_use]
    #[inline]
    pub fn eval(&self, key: u64) -> u64 {
        let x = crate::field::reduce64(key);
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = add(mul(acc, x), c);
        }
        acc
    }

    /// Hash `key` into `[0, m)` with negligible (≤ m·2⁻⁶¹) bias via
    /// multiply-shift: `⌊eval(key)·m / 2⁶¹⌋`.
    ///
    /// # Panics
    /// If `m == 0`.
    #[must_use]
    #[inline]
    pub fn bucket(&self, key: u64, m: u64) -> u64 {
        assert!(m > 0, "bucket count must be positive");
        ((u128::from(self.eval(key)) * u128::from(m)) >> 61) as u64
    }
}

/// A `t`-wise independent sign function `[d] → {−1, +1}` backed by the
/// parity of an independent [`PolyHash`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignHash {
    inner: PolyHash,
}

impl SignHash {
    /// Draw a random sign function of independence degree `t`.
    #[must_use]
    pub fn sample<R: Prng>(t: usize, rng: &mut R) -> Self {
        Self {
            inner: PolyHash::sample(t, rng),
        }
    }

    /// The sign assigned to `key`.
    #[must_use]
    #[inline]
    pub fn sign(&self, key: u64) -> f64 {
        // Bit 33 of the field element: interior bits of the polynomial
        // output are unbiased up to the field's 2^-61 deficit.
        if (self.inner.eval(key) >> 33) & 1 == 1 {
            1.0
        } else {
            -1.0
        }
    }
}

/// A factory for independent hash/sign functions of a fixed degree,
/// deterministically derived from a seed (so the family is *public* and
/// reconstructible, as the distributed protocol requires).
#[derive(Debug, Clone)]
pub struct KWiseFamily {
    degree: usize,
    seed: Seed,
}

impl KWiseFamily {
    /// A family of `t`-wise independent functions rooted at `seed`.
    ///
    /// # Panics
    /// If `degree == 0`.
    #[must_use]
    pub fn new(degree: usize, seed: Seed) -> Self {
        assert!(degree >= 1, "independence degree must be at least 1");
        Self { degree, seed }
    }

    /// Independence degree `t`.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The `i`-th bucket hash of the family (deterministic in `(seed, i)`).
    #[must_use]
    pub fn hash_fn(&self, i: u64) -> PolyHash {
        let mut rng = self.seed.child("hash").index(i).rng();
        PolyHash::sample(self.degree, &mut rng)
    }

    /// The `i`-th sign function of the family (independent of `hash_fn(i)`).
    #[must_use]
    pub fn sign_fn(&self, i: u64) -> SignHash {
        let mut rng = self.seed.child("sign").index(i).rng();
        SignHash::sample(self.degree, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::Xoshiro256pp;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seeded(0xD15EA5E)
    }

    #[test]
    fn eval_is_deterministic() {
        let h = PolyHash::sample(4, &mut rng());
        assert_eq!(h.eval(17), h.eval(17));
        assert_eq!(h.degree(), 4);
    }

    #[test]
    fn constant_polynomial_degree_one() {
        let h = PolyHash::sample(1, &mut rng());
        // Degree-1 family = constant function: 1-wise "independence".
        assert_eq!(h.eval(0), h.eval(1));
        assert_eq!(h.eval(5), h.eval(500));
    }

    #[test]
    fn bucket_within_range() {
        let h = PolyHash::sample(4, &mut rng());
        for m in [1u64, 2, 3, 7, 1024, 1 << 40] {
            for key in 0..200u64 {
                assert!(h.bucket(key, m) < m);
            }
        }
    }

    #[test]
    fn bucket_uniformity_chi_square() {
        // 4-wise family over m = 8 buckets, 80k keys; loose χ² gate.
        let h = PolyHash::sample(4, &mut rng());
        let m = 8u64;
        let n = 80_000u64;
        let mut counts = vec![0u64; m as usize];
        for key in 0..n {
            counts[h.bucket(key, m) as usize] += 1;
        }
        let expect = n as f64 / m as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        // df = 7; P(χ² > 40) is astronomically small.
        assert!(chi2 < 40.0, "chi2 = {chi2}, counts = {counts:?}");
    }

    #[test]
    fn pairwise_independence_empirical() {
        // For a 2-wise family, Cov(1[h(a)=0], 1[h(b)=0]) ≈ 0 across draws.
        let m = 4u64;
        let trials = 20_000;
        let mut rng = rng();
        let (mut pa, mut pb, mut pab) = (0u64, 0u64, 0u64);
        for _ in 0..trials {
            let h = PolyHash::sample(2, &mut rng);
            let ha = h.bucket(1, m) == 0;
            let hb = h.bucket(2, m) == 0;
            pa += u64::from(ha);
            pb += u64::from(hb);
            pab += u64::from(ha && hb);
        }
        let (pa, pb, pab) = (
            pa as f64 / trials as f64,
            pb as f64 / trials as f64,
            pab as f64 / trials as f64,
        );
        assert!((pa - 0.25).abs() < 0.02, "pa = {pa}");
        assert!((pb - 0.25).abs() < 0.02, "pb = {pb}");
        assert!((pab - pa * pb).abs() < 0.02, "pab = {pab}");
    }

    #[test]
    fn signs_are_balanced_and_deterministic() {
        let s = SignHash::sample(4, &mut rng());
        let n = 50_000u64;
        let sum: f64 = (0..n).map(|k| s.sign(k)).sum();
        assert!(sum.abs() / (n as f64) < 0.02, "mean sign {sum}");
        assert_eq!(s.sign(12345), s.sign(12345));
    }

    #[test]
    fn family_reconstructibility() {
        let fam1 = KWiseFamily::new(6, Seed::new(777));
        let fam2 = KWiseFamily::new(6, Seed::new(777));
        for i in 0..4 {
            assert_eq!(fam1.hash_fn(i), fam2.hash_fn(i));
            for key in 0..64 {
                assert_eq!(fam1.sign_fn(i).sign(key), fam2.sign_fn(i).sign(key));
            }
        }
    }

    #[test]
    fn family_functions_are_distinct() {
        let fam = KWiseFamily::new(6, Seed::new(9));
        assert_ne!(fam.hash_fn(0), fam.hash_fn(1));
        // hash and sign streams are separated by label:
        let h = fam.hash_fn(0);
        let s = fam.sign_fn(0);
        let disagree = (0..1000u64)
            .filter(|&k| (h.eval(k) & 1 == 1) != (s.sign(k) > 0.0))
            .count();
        assert!(disagree > 0, "sign stream must not mirror hash stream");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_degree_rejected() {
        let _ = KWiseFamily::new(0, Seed::new(1));
    }
}
