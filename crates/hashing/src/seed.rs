//! Hierarchical, label-addressed seed derivation.
//!
//! In the distributed setting the projection `S` is rebuilt by every party
//! from a shared public seed, while each party keeps its own private noise
//! seed. [`Seed`] gives both sides a collision-resistant-enough (for
//! non-adversarial stream separation) way to derive named sub-seeds:
//! `root.child("transform")`, `root.child("noise").index(party_id)`, etc.

use crate::prng::{SplitMix64, Xoshiro256pp};

/// A 64-bit seed with deterministic, labelled derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Seed(u64);

impl Seed {
    /// Wrap a raw seed value.
    #[must_use]
    pub const fn new(v: u64) -> Self {
        Self(v)
    }

    /// The raw 64-bit value.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Derive a child seed from a string label (FNV-1a over the label,
    /// then SplitMix64-mixed with the parent).
    #[must_use]
    pub fn child(self, label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(SplitMix64::mix(self.0 ^ h.rotate_left(32)))
    }

    /// Derive an indexed child seed (e.g. per-party, per-repetition).
    #[must_use]
    pub fn index(self, i: u64) -> Self {
        Self(SplitMix64::mix(
            self.0 ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }

    /// Spawn a stream generator for this seed.
    #[must_use]
    pub fn rng(self) -> Xoshiro256pp {
        Xoshiro256pp::seeded(self.0)
    }
}

impl From<u64> for Seed {
    fn from(v: u64) -> Self {
        Self::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::Prng;

    #[test]
    fn children_are_deterministic() {
        let s = Seed::new(1);
        assert_eq!(s.child("transform"), s.child("transform"));
        assert_eq!(s.index(4), s.index(4));
    }

    #[test]
    fn distinct_labels_distinct_seeds() {
        let s = Seed::new(1);
        assert_ne!(s.child("transform"), s.child("noise"));
        assert_ne!(s.child("a"), s.child("b"));
        assert_ne!(s.index(0), s.index(1));
    }

    #[test]
    fn label_and_index_paths_do_not_collide_casually() {
        let s = Seed::new(99);
        let via_label: Vec<Seed> = ["a", "b", "c", "noise", "transform"]
            .iter()
            .map(|l| s.child(l))
            .collect();
        let via_index: Vec<Seed> = (0..5).map(|i| s.index(i)).collect();
        for a in &via_label {
            for b in &via_index {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn rng_streams_differ_between_children() {
        let s = Seed::new(5);
        let mut a = s.child("x").rng();
        let mut b = s.child("y").rng();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn nested_derivation_is_order_sensitive() {
        let s = Seed::new(7);
        assert_ne!(s.child("a").child("b"), s.child("b").child("a"));
        assert_ne!(s.child("a").index(1), s.index(1).child("a"));
    }
}
