//! Arithmetic in GF(p) for the Mersenne prime p = 2⁶¹ − 1.
//!
//! Polynomial hash families need a prime field that is (a) large enough
//! that the `[0, p) → [0, m)` range mapping has negligible bias for any
//! practical bucket count `m`, and (b) fast: reduction modulo a Mersenne
//! prime is two shifts and an add. All elements are `u64` values in
//! `[0, p)`.

/// The Mersenne prime 2⁶¹ − 1.
pub const M61: u64 = (1u64 << 61) - 1;

/// Reduce an arbitrary `u64` into `[0, M61)`.
#[must_use]
#[inline]
pub fn reduce64(x: u64) -> u64 {
    let r = (x & M61) + (x >> 61);
    if r >= M61 {
        r - M61
    } else {
        r
    }
}

/// Reduce a 128-bit product into `[0, M61)`.
#[must_use]
#[inline]
pub fn reduce128(x: u128) -> u64 {
    // x = hi·2^61 + lo  ⇒  x ≡ hi + lo (mod 2^61 − 1), with hi < 2^67.
    let lo = (x & u128::from(M61)) as u64;
    let hi = (x >> 61) as u64;
    reduce64(reduce64(hi) + lo)
}

/// Addition mod 2⁶¹−1 for operands already in `[0, M61)`.
#[must_use]
#[inline]
pub fn add(a: u64, b: u64) -> u64 {
    debug_assert!(a < M61 && b < M61);
    let s = a + b; // < 2^62, no overflow
    if s >= M61 {
        s - M61
    } else {
        s
    }
}

/// Multiplication mod 2⁶¹−1 for operands already in `[0, M61)`.
#[must_use]
#[inline]
pub fn mul(a: u64, b: u64) -> u64 {
    debug_assert!(a < M61 && b < M61);
    reduce128(u128::from(a) * u128::from(b))
}

/// Modular exponentiation by squaring.
#[must_use]
pub fn pow(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    base = reduce64(base);
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        exp >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reduce_boundaries() {
        assert_eq!(reduce64(0), 0);
        assert_eq!(reduce64(M61), 0);
        assert_eq!(reduce64(M61 - 1), M61 - 1);
        assert_eq!(reduce64(M61 + 5), 5);
        // 2⁶⁴ − 1 = 8·(2⁶¹ − 1) + 7
        assert_eq!(reduce64(u64::MAX), 7);
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(add(3, 4), 7);
        assert_eq!(mul(3, 4), 12);
        assert_eq!(add(M61 - 1, 1), 0);
        assert_eq!(mul(M61 - 1, M61 - 1), 1); // (−1)² = 1
    }

    #[test]
    fn fermat_little_theorem_samples() {
        // a^(p−1) = 1 mod p for a ≠ 0.
        for a in [1u64, 2, 3, 12345, M61 - 2] {
            assert_eq!(pow(a, M61 - 1), 1, "a = {a}");
        }
        assert_eq!(pow(0, M61 - 1), 0);
    }

    proptest! {
        #[test]
        fn add_matches_u128_model(a in 0..M61, b in 0..M61) {
            let model = ((u128::from(a) + u128::from(b)) % u128::from(M61)) as u64;
            prop_assert_eq!(add(a, b), model);
        }

        #[test]
        fn mul_matches_u128_model(a in 0..M61, b in 0..M61) {
            let model = ((u128::from(a) * u128::from(b)) % u128::from(M61)) as u64;
            prop_assert_eq!(mul(a, b), model);
        }

        #[test]
        fn reduce128_matches_model(x in any::<u128>()) {
            // Limit to products of field elements, the only inputs we use.
            let x = x % (u128::from(M61) * u128::from(M61));
            let model = (x % u128::from(M61)) as u64;
            prop_assert_eq!(reduce128(x), model);
        }

        #[test]
        fn mul_commutes_and_associates(a in 0..M61, b in 0..M61, c in 0..M61) {
            prop_assert_eq!(mul(a, b), mul(b, a));
            prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
        }

        #[test]
        fn distributivity(a in 0..M61, b in 0..M61, c in 0..M61) {
            prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }
    }
}
