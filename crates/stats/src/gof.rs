//! Goodness-of-fit statistics: Kolmogorov–Smirnov and χ².

/// One-sample Kolmogorov–Smirnov statistic
/// `D = sup_x |F̂(x) − F(x)|` against a reference CDF.
///
/// # Panics
/// If the sample is empty.
#[must_use]
pub fn ks_statistic(sample: &[f64], cdf: impl Fn(f64) -> f64) -> f64 {
    assert!(!sample.is_empty(), "KS of empty sample");
    let mut xs = sample.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = xs.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in xs.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Approximate KS acceptance threshold at significance `alpha ∈ {0.01,
/// 0.05, 0.1}`: `c(α)/√n` with the asymptotic constants.
///
/// # Panics
/// On unsupported `alpha`.
#[must_use]
pub fn ks_threshold(n: usize, alpha: f64) -> f64 {
    let c = if (alpha - 0.01).abs() < 1e-12 {
        1.63
    } else if (alpha - 0.05).abs() < 1e-12 {
        1.36
    } else if (alpha - 0.10).abs() < 1e-12 {
        1.22
    } else {
        panic!("unsupported KS significance {alpha}")
    };
    c / (n as f64).sqrt()
}

/// Pearson χ² statistic for observed counts against expected counts.
///
/// # Panics
/// On length mismatch or non-positive expected counts.
#[must_use]
pub fn chi_square(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            assert!(e > 0.0, "expected count must be positive");
            let d = o as f64 - e;
            d * d / e
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_hashing::{Prng, Seed};
    use dp_noise::erf::std_normal_cdf;
    use dp_noise::gaussian::Gaussian;

    #[test]
    fn ks_accepts_matching_distribution() {
        let mut rng = Seed::new(77).rng();
        let g = Gaussian::new(1.0).unwrap();
        let sample: Vec<f64> = (0..20_000).map(|_| g.sample(&mut rng)).collect();
        let d = ks_statistic(&sample, std_normal_cdf);
        assert!(d < ks_threshold(sample.len(), 0.01), "D = {d}");
    }

    #[test]
    fn ks_rejects_wrong_scale() {
        let mut rng = Seed::new(78).rng();
        let g = Gaussian::new(2.0).unwrap(); // wrong σ vs reference
        let sample: Vec<f64> = (0..20_000).map(|_| g.sample(&mut rng)).collect();
        let d = ks_statistic(&sample, std_normal_cdf);
        assert!(d > 5.0 * ks_threshold(sample.len(), 0.01), "D = {d}");
    }

    #[test]
    fn ks_on_uniform() {
        let mut rng = Seed::new(79).rng();
        let sample: Vec<f64> = (0..10_000).map(|_| rng.next_f64()).collect();
        let d = ks_statistic(&sample, |x| x.clamp(0.0, 1.0));
        assert!(d < ks_threshold(sample.len(), 0.01), "D = {d}");
    }

    #[test]
    fn chi_square_zero_for_exact_match() {
        assert_eq!(chi_square(&[10, 20], &[10.0, 20.0]), 0.0);
        let c = chi_square(&[12, 18], &[10.0, 20.0]);
        assert!((c - (4.0 / 10.0 + 4.0 / 20.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn bad_alpha_panics() {
        let _ = ks_threshold(100, 0.2);
    }
}
