//! Minimal ASCII table rendering for harness output.
//!
//! Every `exp_*` binary prints its paper-vs-measured rows through this
//! type so EXPERIMENTS.md extracts are uniform.

use std::fmt;

/// A simple left-padded ASCII table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    ///
    /// # Panics
    /// On arity mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, w) in cells.iter().zip(&widths) {
                write!(f, " {cell:>w$} |")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Format a float compactly for table cells (4 significant digits,
/// scientific for very small/large magnitudes).
#[must_use]
pub fn fmt_g(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if (1e-3..1e6).contains(&a) {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["k", "value"]);
        t.row(vec!["8", "1.25"]).row(vec!["1024", "0.003"]);
        let s = t.to_string();
        assert!(s.contains("| 1024 |"), "{s}");
        assert!(s.lines().count() == 4);
        // All lines equal width.
        let widths: Vec<usize> = s.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{widths:?}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new(vec!["a", "b"]).row(vec!["1"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_g(0.0), "0");
        assert_eq!(fmt_g(1.5), "1.5000");
        assert!(fmt_g(1e-9).contains('e'));
        assert!(fmt_g(-3.2e9).contains('e'));
    }

    #[test]
    fn empty_table() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_string().lines().count(), 2);
    }
}
