//! Empirical privacy-loss auditing for output-perturbation mechanisms.
//!
//! For a mechanism releasing `T(x) + η` with i.i.d. per-coordinate noise
//! of known log-density, the privacy-loss random variable on a fixed
//! neighboring pair `(x, x′)` observed at output `o` drawn from the `x`
//! side is
//!
//! ```text
//! L(o) = Σᵢ [ ln p(oᵢ − T(x)ᵢ) − ln p(oᵢ − T(x′)ᵢ) ]
//! ```
//!
//! (ε,δ)-DP implies `P[L > ε] ≤ δ`; pure ε-DP implies `P[L > ε] = 0`
//! with probability one. [`LossAudit`] collects loss samples and exposes
//! the empirical tail; the closed forms [`laplace_loss_bound`] and
//! [`gaussian_loss_tail`] give the exact references the audit is gated
//! against in experiment E7.

use dp_noise::erf::std_normal_cdf;

/// A collection of privacy-loss samples for one neighboring pair.
#[derive(Debug, Clone, Default)]
pub struct LossAudit {
    losses: Vec<f64>,
}

impl LossAudit {
    /// Empty audit.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one loss sample.
    pub fn push(&mut self, loss: f64) {
        self.losses.push(loss);
    }

    /// Record the loss of one output vector given the two noiseless
    /// sketches and a per-coordinate log-density.
    pub fn push_output(
        &mut self,
        output: &[f64],
        sketch_x: &[f64],
        sketch_x_prime: &[f64],
        ln_pdf: impl Fn(f64) -> f64,
    ) {
        assert_eq!(output.len(), sketch_x.len(), "length mismatch");
        assert_eq!(output.len(), sketch_x_prime.len(), "length mismatch");
        let loss: f64 = output
            .iter()
            .zip(sketch_x.iter().zip(sketch_x_prime))
            .map(|(&o, (&a, &b))| ln_pdf(o - a) - ln_pdf(o - b))
            .sum();
        self.losses.push(loss);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.losses.len()
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.losses.is_empty()
    }

    /// Largest observed loss.
    ///
    /// # Panics
    /// If empty.
    #[must_use]
    pub fn max_loss(&self) -> f64 {
        assert!(!self.losses.is_empty(), "empty audit");
        self.losses
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Empirical `P[L > ε]`.
    ///
    /// # Panics
    /// If empty.
    #[must_use]
    pub fn fraction_exceeding(&self, epsilon: f64) -> f64 {
        assert!(!self.losses.is_empty(), "empty audit");
        self.losses.iter().filter(|&&l| l > epsilon).count() as f64 / self.losses.len() as f64
    }

    /// The recorded losses.
    #[must_use]
    pub fn losses(&self) -> &[f64] {
        &self.losses
    }
}

/// Deterministic Laplace loss bound: for `Lap(b)` noise the loss is
/// bounded by `‖T(x) − T(x′)‖₁ / b` **surely** — the pure-DP certificate
/// (equals ε when `b = ∆₁/ε` and the pair attains the sensitivity).
#[must_use]
pub fn laplace_loss_bound(l1_diff: f64, scale: f64) -> f64 {
    l1_diff / scale
}

/// Exact Gaussian loss tail: with `N(0, σ²)` noise and sketch difference
/// of ℓ₂ norm `Δ`, the loss is `N(μ, 2μ)` for `μ = Δ²/(2σ²)`, so
/// `P[L > ε] = Φ((μ − ε)/√(2μ))`.
#[must_use]
pub fn gaussian_loss_tail(l2_diff: f64, sigma: f64, epsilon: f64) -> f64 {
    if l2_diff == 0.0 {
        return 0.0;
    }
    let mu = l2_diff * l2_diff / (2.0 * sigma * sigma);
    std_normal_cdf((mu - epsilon) / (2.0 * mu).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_hashing::Seed;
    use dp_noise::{gaussian::Gaussian, laplace::Laplace};

    #[test]
    fn laplace_loss_never_exceeds_bound() {
        // 1-D worst-case pair at distance ∆₁ = 1, b = 1/ε.
        let eps = 0.7;
        let b = 1.0 / eps;
        let lap = Laplace::new(b).unwrap();
        let (sx, sxp) = (0.0, 1.0);
        let mut audit = LossAudit::new();
        let mut rng = Seed::new(5).rng();
        for _ in 0..100_000 {
            let o = sx + lap.sample(&mut rng);
            audit.push_output(&[o], &[sx], &[sxp], |v| lap.ln_pdf(v));
        }
        let bound = laplace_loss_bound(1.0, b);
        assert!((bound - eps).abs() < 1e-12);
        assert!(audit.max_loss() <= bound + 1e-9, "max {}", audit.max_loss());
        assert_eq!(audit.fraction_exceeding(eps + 1e-9), 0.0);
    }

    #[test]
    fn gaussian_loss_tail_matches_empirical() {
        let sigma = 2.0;
        let delta_norm = 1.0;
        let eps = 0.3;
        let g = Gaussian::new(sigma).unwrap();
        let mut audit = LossAudit::new();
        let mut rng = Seed::new(6).rng();
        let (sx, sxp) = (0.0, delta_norm);
        for _ in 0..200_000 {
            let o = sx + g.sample(&mut rng);
            audit.push_output(&[o], &[sx], &[sxp], |v| g.ln_pdf(v));
        }
        let emp = audit.fraction_exceeding(eps);
        let theory = gaussian_loss_tail(delta_norm, sigma, eps);
        assert!((emp - theory).abs() < 0.01, "emp {emp} vs theory {theory}");
    }

    #[test]
    fn multidimensional_loss_sums_coordinates() {
        let g = Gaussian::new(1.0).unwrap();
        let mut audit = LossAudit::new();
        // Deterministic output: loss must equal the analytic sum.
        let out = [1.0, -0.5];
        let sx = [0.0, 0.0];
        let sxp = [1.0, 1.0];
        audit.push_output(&out, &sx, &sxp, |v| g.ln_pdf(v));
        let want: f64 = out
            .iter()
            .zip(sx.iter().zip(&sxp))
            .map(|(&o, (&a, &b))| g.ln_pdf(o - a) - g.ln_pdf(o - b))
            .sum();
        assert!((audit.losses()[0] - want).abs() < 1e-12);
    }

    #[test]
    fn zero_difference_never_loses() {
        assert_eq!(gaussian_loss_tail(0.0, 1.0, 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty audit")]
    fn empty_audit_panics() {
        let _ = LossAudit::new().max_loss();
    }
}
