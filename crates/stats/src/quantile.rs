//! Quantiles and median-of-means.

/// The `q`-quantile (linear interpolation) of a sample, `q ∈ [0, 1]`.
///
/// # Panics
/// If the sample is empty or `q ∉ [0, 1]`.
#[must_use]
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1], got {q}");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in sample"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// The median.
///
/// # Panics
/// If the sample is empty.
#[must_use]
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Median-of-means: split into `groups` contiguous blocks, average each,
/// take the median of the block means. The standard sub-Gaussian-tail
/// estimator sketch repositories use when repeating a sketch `groups`
/// times.
///
/// # Panics
/// If the sample is empty or `groups == 0`.
#[must_use]
pub fn median_of_means(values: &[f64], groups: usize) -> f64 {
    assert!(!values.is_empty(), "median_of_means of empty sample");
    assert!(groups > 0, "need at least one group");
    let groups = groups.min(values.len());
    let base = values.len() / groups;
    let rem = values.len() % groups;
    let mut means = Vec::with_capacity(groups);
    let mut start = 0;
    for g in 0..groups {
        let len = base + usize::from(g < rem);
        let block = &values[start..start + len];
        means.push(block.iter().sum::<f64>() / block.len() as f64);
        start += len;
    }
    median(&means)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_sample() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(median(&xs), 3.0);
        assert_eq!(quantile(&xs, 0.25), 2.0);
        // Interpolation between ranks:
        assert!((quantile(&xs, 0.1) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn median_even_sample_interpolates() {
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = median(&[]);
    }

    #[test]
    fn unsorted_input_handled() {
        assert_eq!(median(&[9.0, 1.0, 5.0]), 5.0);
    }

    #[test]
    fn median_of_means_basic() {
        // 3 groups of 2 over [0,0, 10,10, 2,2] → means [0, 10, 2] → 2.
        let xs = [0.0, 0.0, 10.0, 10.0, 2.0, 2.0];
        assert_eq!(median_of_means(&xs, 3), 2.0);
        // One group = plain mean.
        assert_eq!(median_of_means(&xs, 1), 4.0);
    }

    #[test]
    fn median_of_means_resists_outlier() {
        let mut xs = vec![1.0; 30];
        xs[7] = 1e9; // single corrupted block
        let mom = median_of_means(&xs, 10);
        assert!((mom - 1.0).abs() < 1e-9, "mom = {mom}");
    }

    #[test]
    fn more_groups_than_values_clamps() {
        assert_eq!(median_of_means(&[5.0, 7.0], 10), 6.0);
    }
}
