//! Streaming mean/variance via Welford's algorithm.

/// Numerically stable streaming summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build from an iterator.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let mut s = Self::new();
        for v in values {
            s.push(v);
        }
        s
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty summary).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn stderr(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum observation (∞ if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.mean = mean;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_sample() {
        let s = Summary::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic sample is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_single() {
        let e = Summary::new();
        assert_eq!(e.count(), 0);
        assert_eq!(e.variance(), 0.0);
        let s = Summary::of([3.0]);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.stderr(), 0.0);
    }

    #[test]
    fn merge_matches_concatenation() {
        let a_vals = [1.0, 2.0, 3.5, -1.0];
        let b_vals = [10.0, 0.25];
        let mut a = Summary::of(a_vals);
        let b = Summary::of(b_vals);
        a.merge(&b);
        let whole = Summary::of(a_vals.into_iter().chain(b_vals));
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::of([1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn welford_matches_two_pass() {
        // Deterministic sweep standing in for the former proptest: vary
        // the length and the value pattern.
        use dp_hashing::{Prng, Seed};
        for (case, len) in [(0u64, 2usize), (1, 7), (2, 31), (3, 99)] {
            let mut rng = Seed::new(case).rng();
            let xs: Vec<f64> = (0..len).map(|_| rng.next_f64() * 2e3 - 1e3).collect();
            let s = Summary::of(xs.iter().copied());
            let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
            let var: f64 =
                xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
            assert!(
                (s.mean() - mean).abs() < 1e-9 * (1.0 + mean.abs()),
                "case {case}"
            );
            assert!(
                (s.variance() - var).abs() < 1e-7 * (1.0 + var),
                "case {case}"
            );
        }
    }
}
