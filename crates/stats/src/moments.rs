//! Empirical central moments.

/// Empirical raw moment `E[Xⁿ]` of a sample.
///
/// # Panics
/// If the sample is empty.
#[must_use]
pub fn raw_moment(values: &[f64], n: u32) -> f64 {
    assert!(!values.is_empty(), "moment of empty sample");
    values.iter().map(|v| v.powi(n as i32)).sum::<f64>() / values.len() as f64
}

/// Empirical central moment `E[(X − X̄)ⁿ]`.
///
/// # Panics
/// If the sample is empty.
#[must_use]
pub fn central_moment(values: &[f64], n: u32) -> f64 {
    let mean = raw_moment(values, 1);
    values
        .iter()
        .map(|v| (v - mean).powi(n as i32))
        .sum::<f64>()
        / values.len() as f64
}

/// Excess kurtosis `m₄/m₂² − 3` (0 for a Gaussian, 3 for a Laplace).
///
/// # Panics
/// If the sample is empty or has zero variance.
#[must_use]
pub fn excess_kurtosis(values: &[f64]) -> f64 {
    let m2 = central_moment(values, 2);
    assert!(m2 > 0.0, "kurtosis of a constant sample");
    central_moment(values, 4) / (m2 * m2) - 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_hashing::Seed;
    use dp_noise::{gaussian::Gaussian, laplace::Laplace};

    #[test]
    fn raw_and_central_on_known_sample() {
        let xs = [1.0, 2.0, 3.0];
        assert!((raw_moment(&xs, 1) - 2.0).abs() < 1e-12);
        assert!((raw_moment(&xs, 2) - 14.0 / 3.0).abs() < 1e-12);
        assert!((central_moment(&xs, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((central_moment(&xs, 3)).abs() < 1e-12); // symmetric
    }

    #[test]
    fn kurtosis_separates_gaussian_from_laplace() {
        let mut rng = Seed::new(31).rng();
        let g = Gaussian::new(1.0).unwrap();
        let l = Laplace::new(1.0).unwrap();
        let n = 200_000;
        let gs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let ls: Vec<f64> = (0..n).map(|_| l.sample(&mut rng)).collect();
        let kg = excess_kurtosis(&gs);
        let kl = excess_kurtosis(&ls);
        assert!(kg.abs() < 0.2, "gaussian kurtosis {kg}");
        assert!((kl - 3.0).abs() < 0.4, "laplace kurtosis {kl}");
    }

    #[test]
    #[should_panic(expected = "constant sample")]
    fn kurtosis_constant_panics() {
        let _ = excess_kurtosis(&[1.0, 1.0]);
    }
}
