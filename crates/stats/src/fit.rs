//! Ordinary least squares in one variable, and log–log slope estimation.
//!
//! The experiments verify *rates*: e.g. Theorem 2/3 predict the JL term of
//! the estimator variance decays like `k⁻¹`, and E5 predicts sketch time
//! grows like `d` (SJLT) vs `d log d` (FJLT). A log–log OLS slope turns
//! those claims into one number to gate on.

/// OLS fit `y ≈ a + b·x`; returns `(a, b, r²)`.
///
/// # Panics
/// If fewer than two points or if all `x` are identical.
#[must_use]
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    assert!(sxx > 0.0, "degenerate x values");
    let b = sxy / sxx;
    let a = my - b * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    (a, b, r2)
}

/// Slope of `ln y` against `ln x` — the empirical exponent `p` in
/// `y ∝ x^p`.
///
/// # Panics
/// If any coordinate is non-positive, or on [`linear_fit`] failures.
#[must_use]
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    let lx: Vec<f64> = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "log-log needs positive x, got {x}");
            x.ln()
        })
        .collect();
    let ly: Vec<f64> = ys
        .iter()
        .map(|&y| {
            assert!(y > 0.0, "log-log needs positive y, got {y}");
            y.ln()
        })
        .collect();
    linear_fit(&lx, &ly).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let (a, b, r2) = linear_fit(&xs, &ys);
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_recovers_slope() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 4.0 - 0.5 * x + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let (_, b, r2) = linear_fit(&xs, &ys);
        assert!((b + 0.5).abs() < 0.01, "slope {b}");
        assert!(r2 > 0.99);
    }

    #[test]
    fn power_law_exponent() {
        // y = 7·x^{-1} → slope −1.
        let xs: Vec<f64> = (1..=16).map(|i| f64::from(i) * 8.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 7.0 / x).collect();
        let p = loglog_slope(&xs, &ys);
        assert!((p + 1.0).abs() < 1e-9, "exponent {p}");
    }

    #[test]
    #[should_panic(expected = "positive x")]
    fn loglog_rejects_nonpositive() {
        let _ = loglog_slope(&[0.0, 1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn constant_x_panics() {
        let _ = linear_fit(&[2.0, 2.0], &[1.0, 2.0]);
    }
}
