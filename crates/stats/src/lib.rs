//! Measurement substrate for tests and the experiment harness.
//!
//! The paper is pure theory; reproducing it means checking distributional
//! claims empirically. This crate holds the machinery those checks share:
//! streaming summaries (Welford), quantiles and median-of-means, empirical
//! moments, least-squares slope fits (for `O(1/k)` decay exponents),
//! goodness-of-fit statistics, an exact privacy-loss auditor for
//! Laplace/Gaussian output perturbation, and an ASCII table renderer for
//! harness output.

pub mod audit;
pub mod fit;
pub mod gof;
pub mod moments;
pub mod quantile;
pub mod summary;
pub mod table;

pub use audit::{gaussian_loss_tail, laplace_loss_bound, LossAudit};
pub use fit::{linear_fit, loglog_slope};
pub use quantile::{median, median_of_means, quantile};
pub use summary::Summary;
pub use table::Table;
