//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the criterion API that the
//! `dp-bench` bench targets use: groups, parameterized benches, element
//! throughput, and `Bencher::iter`. Timing is a calibrated
//! median-of-rounds wall-clock measurement — good enough for the relative
//! comparisons the experiment write-ups make, with none of criterion's
//! statistics. Swap the `[workspace.dependencies] criterion` path entry
//! for the real crates.io version when network access is available; the
//! bench sources compile against either.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a bench group (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiple variant (API parity).
    BytesDecimal(u64),
}

/// Identifier of one bench within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

/// Runs closures and records a median time per iteration.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `f`, storing the median-of-rounds nanoseconds per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate the per-round iteration count to ~5 ms of work.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut rounds: Vec<f64> = (0..5)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    std_black_box(f());
                }
                t0.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        rounds.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = rounds[2];
    }
}

/// A named group of related benches.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration work for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Ignored (API parity with criterion's sampling control).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored (API parity with criterion's timing control).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one bench identified by `id` with an auxiliary input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        self.report(&id.label, b.ns_per_iter);
    }

    /// Run one bench identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        self.report(&id.label, b.ns_per_iter);
    }

    /// End the group (prints nothing; criterion API parity).
    pub fn finish(self) {}

    fn report(&self, label: &str, ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
                format!("  ({:.1} MB/s)", n as f64 / ns * 1e3)
            }
            None => String::new(),
        };
        println!("{}/{label:<28} {ns:>12.1} ns/iter{rate}", self.name);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _parent: self,
        }
    }

    /// Run a single ungrouped bench.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        println!("{name:<36} {:>12.1} ns/iter", b.ns_per_iter);
        self
    }
}

/// Mirror of `criterion::criterion_group!`: bundles bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`: the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        let mut acc = 0u64;
        group.bench_with_input(BenchmarkId::new("add", 1), &1u64, |b, _| {
            b.iter(|| acc = acc.wrapping_add(1));
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2u64 + 2)));
        group.finish();
    }
}
