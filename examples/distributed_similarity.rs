//! Distributed private similarity search — the paper's motivating setting.
//!
//! Ten parties each hold a user-profile vector. They agree on public
//! parameters (a `SketcherSpec`: construction + config + transform seed),
//! each releases one noisy sketch over the binary wire, and a
//! coordinator — who never sees any raw vector — answers similarity
//! queries from the released sketches alone. Privacy for every party
//! follows from Theorem 3 plus post-processing.
//!
//! The coordinator side is the `dp-engine` query layer: a persistent
//! `SketchStore` ingests the wire frames (validating compatibility and
//! interning the transform tag once), and the `QueryEngine` answers
//! all-pairs, closest-pair, and nearest-neighbor queries incrementally.
//!
//! The whole protocol is construction-agnostic: the same code below runs
//! once with the SJLT+Laplace headline construction and once with the
//! Kenthapadi baseline, switching only the spec.
//!
//! Run with: `cargo run --release --example distributed_similarity`

use dp_euclid::hashing::Seed;
use dp_euclid::prelude::*;

fn profile(d: usize, group: usize, idx: u64) -> Vec<f64> {
    // Group members share a base pattern plus individual variation.
    let base = Seed::new(5000 + group as u64);
    let personal = base.index(idx);
    dp_euclid::linalg::SparseVector::new(
        d,
        (0..64)
            .map(|t| {
                let j = (base.index(t).value() % d as u64) as usize;
                let jitter = (personal.index(t).value() % 100) as f64 / 200.0;
                // Scaled so inter-cluster distances clear the eps = 2
                // noise floor (single-shot estimates; see the variance
                // bound printed below).
                (j, 25.0 * (1.0 + jitter))
            })
            .collect(),
    )
    .expect("indices in range")
    .to_dense()
}

fn run_protocol(params: &PublicParams) {
    let d = params.config().input_dim();
    println!(
        "\n== construction: {} ==",
        params.spec().construction().name()
    );

    // Two clusters of five parties each.
    let parties: Vec<Party> = (0..10)
        .map(|i| Party::new(i, profile(d, (i / 5) as usize, i), Seed::new(900 + i)))
        .collect();

    // Each party serializes its release over the compact binary wire.
    let wire: Vec<Vec<u8>> = parties
        .iter()
        .map(|p| p.release_bytes(params).expect("release"))
        .collect();
    println!(
        "released {} sketches, {} bytes each (k = {})",
        wire.len(),
        wire[0].len(),
        params.sketcher().expect("sketcher").k()
    );

    // Coordinator: one persistent store owns the spec, the tag
    // interner, and every ingested sketch; the engine answers queries.
    // The all-pairs kernel runs on the env-driven Parallelism knob
    // (DP_THREADS / DP_TILE); estimates are bit-identical regardless.
    let par = Parallelism::from_env();
    let store = SketchStore::with_spec(params.spec().clone()).expect("store");
    let mut engine = QueryEngine::new(store).with_parallelism(par);
    for bytes in &wire {
        engine.ingest_bytes(bytes).expect("ingest");
    }
    println!(
        "store: {} rows, {} distinct transform tag(s) interned",
        engine.store().n(),
        engine.store().interner_len()
    );
    println!(
        "pairwise kernel: {} worker(s), tile {}",
        par.threads(),
        par.tile()
    );

    // Coordinator-side analytics on released data only.
    let ids = engine.store().party_ids().to_vec();
    let dist = engine.pairwise_all();
    let mut intra = Vec::new();
    let mut inter = Vec::new();
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            if ids[i] / 5 == ids[j] / 5 {
                intra.push(dist.at(i, j));
            } else {
                inter.push(dist.at(i, j));
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "mean intra-cluster est. distance² = {:.1}, inter-cluster = {:.1}",
        mean(&intra),
        mean(&inter)
    );
    assert!(
        mean(&intra) < mean(&inter),
        "clusters should be separable from private sketches"
    );
    let (a, b, closest) = engine.top_pairs(1)[0];
    println!("closest pair: parties {a} and {b} (est. distance² = {closest:.1})");

    // Nearest-neighbor query for party 0, straight off the engine.
    let nn = engine.knn(0, 1).expect("knn");
    println!(
        "nearest neighbor of party 0: {} (est. distance² = {:.1})",
        nn[0].party_id, nn[0].estimated_sq_distance
    );
    assert!(nn[0].party_id < 5, "should stay in cluster 0");
}

fn main() {
    let d = 1 << 10;

    // Headline construction: private SJLT, pure ε-DP (no δ budgeted).
    let pure_config = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.15)
        .beta(0.05)
        .epsilon(2.0)
        .build()
        .expect("valid configuration");
    run_protocol(&PublicParams::new(pure_config, Seed::new(77)));

    // The Kenthapadi baseline, selected purely by the spec — identical
    // protocol code, (ε, δ) guarantee.
    let approx_config = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.15)
        .beta(0.05)
        .epsilon(2.0)
        .delta(1e-6)
        .build()
        .expect("valid configuration");
    run_protocol(&PublicParams::with_construction(
        Construction::Kenthapadi(SigmaCalibration::ExactSensitivity),
        approx_config,
        Seed::new(78),
    ));
}
