//! Streaming histogram comparison — Theorem 3 item 4 in action.
//!
//! Two sites observe event streams over a huge item universe and maintain
//! SJLT sketches incrementally (`O(s)` per event). At reporting time each
//! adds Laplace noise calibrated for attribute-level DP (one event shifts
//! the histogram by 1 in ℓ₁ — exactly the paper's Definition 1) and
//! releases. The release path is mechanism-agnostic (`&dyn
//! NoiseMechanism`), so swapping the calibration never touches the
//! streaming code. The analyst estimates how far apart the two traffic
//! distributions are without ever seeing a raw count.
//!
//! Run with: `cargo run --release --example streaming_histograms`

use dp_euclid::hashing::{Prng, Seed};
use dp_euclid::noise::mechanism::{LaplaceMechanism, NoiseMechanism};
use dp_euclid::prelude::*;
use dp_euclid::transforms::sjlt::Sjlt;

fn main() {
    let d = 1 << 16; // item universe
    let params = JlParams::new(0.2, 0.05).expect("params");
    let (k, s, t) = (params.k_for_sjlt(), params.s(), params.independence());
    let epsilon = 1.0;

    // PUBLIC transform, shared by both sites.
    let transform = Sjlt::new_cached(d, k, s, t, Seed::new(31337)).expect("sjlt");
    let mech = LaplaceMechanism::new(transform.l1_sensitivity(), epsilon).expect("mech");
    println!(
        "streaming sketch: universe d = {d}, k = {k}, s = {s}, {}",
        mech.guarantee()
    );

    // Site A: Zipf-ish traffic; Site B: same head, shifted tail.
    let mut site_a = StreamingSketch::new(transform.clone(), "histogram".into());
    let mut site_b = StreamingSketch::new(transform, "histogram".into());
    let mut true_a = vec![0.0f64; d];
    let mut true_b = vec![0.0f64; d];
    let mut rng = Seed::new(99).rng();
    let events = 200_000u32;
    for _ in 0..events {
        // Crude Zipf sampler over ranks 1..d via inverse power draw.
        let u = rng.next_open_f64();
        let rank_a = ((1.0 / u).powf(0.7) as usize).min(d - 1);
        site_a.update(rank_a, 1.0).expect("update");
        true_a[rank_a] += 1.0;

        let u = rng.next_open_f64();
        let rank_b = (((1.0 / u).powf(0.7) as usize) + 50).min(d - 1);
        site_b.update(rank_b, 1.0).expect("update");
        true_b[rank_b] += 1.0;
    }
    println!(
        "processed {events} events per site ({} turnstile updates each)",
        site_a.update_count()
    );

    // Private releases with per-site noise seeds.
    let rel_a = site_a.release(&mech, Seed::new(1001));
    let rel_b = site_b.release(&mech, Seed::new(2002));

    let est = rel_a.estimate_sq_distance(&rel_b).expect("estimate");
    let true_dist = dp_euclid::linalg::vector::sq_distance(&true_a, &true_b);
    println!("true  ‖histA − histB‖² = {true_dist:.0}");
    println!("est.  ‖histA − histB‖² = {est:.0}");
    let rel_err = (est - true_dist).abs() / true_dist;
    println!("relative error = {:.1}%", 100.0 * rel_err);
    assert!(rel_err < 0.5, "estimate should land within 50% here");

    // The same released sketches also answer norm queries.
    let norm_est = rel_a.estimate_sq_norm();
    let true_norm = dp_euclid::linalg::vector::sq_norm(&true_a);
    println!("site A traffic mass² estimate: {norm_est:.0} (true {true_norm:.0})");
}
