//! Streaming histogram comparison — Theorem 3 item 4 in action.
//!
//! Two sites observe event streams over a huge item universe and maintain
//! SJLT sketches incrementally (`O(s)` per event). The whole pipeline is
//! driven by one `SketcherSpec`: the spec builds the shared sketcher, the
//! sketcher hands each site a ready-made `StreamingSketch` over its own
//! public transform (`StreamingSketcher::streaming_sketch`), and at
//! reporting time each site releases through
//! `StreamingSketch::release_via` — the sketcher adds its calibrated
//! Laplace noise (attribute-level DP: one event shifts the histogram by 1
//! in ℓ₁ — exactly the paper's Definition 1) and tags the release, so it
//! interoperates with every other release under the same spec. No
//! hand-built mechanism, no hand-matched tags. The analyst estimates how
//! far apart the two traffic distributions are without ever seeing a raw
//! count.
//!
//! Run with: `cargo run --release --example streaming_histograms`
//!
//! `DP_SMOKE=1` shrinks the stream for CI smoke runs.

use dp_euclid::hashing::{Prng, Seed};
use dp_euclid::prelude::*;

fn main() {
    let d = 1 << 16; // item universe
    let config = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.2)
        .beta(0.05)
        .epsilon(1.0)
        .build()
        .expect("config");

    // PUBLIC spec, shared by both sites (pure ε-DP: Note 5 under no δ
    // resolves to the Laplace mechanism with the SJLT's ℓ₁ sensitivity).
    let spec = SketcherSpec::new(Construction::SjltAuto, config, Seed::new(31337));
    let sketcher = spec.build().expect("sketcher");
    println!(
        "streaming sketch: universe d = {d}, k = {}, tag = {}, {}",
        sketcher.k(),
        sketcher.tag(),
        sketcher.guarantee()
    );

    // Site A: Zipf-ish traffic; Site B: same head, shifted tail. Each
    // site's stream accumulator comes ready-made from the sketcher.
    let mut site_a = sketcher.streaming_sketch().expect("sjlt streams");
    let mut site_b = sketcher.streaming_sketch().expect("sjlt streams");
    let mut true_a = vec![0.0f64; d];
    let mut true_b = vec![0.0f64; d];
    let mut rng = Seed::new(99).rng();
    let events: u32 = if std::env::var_os("DP_SMOKE").is_some() {
        20_000
    } else {
        200_000
    };
    for _ in 0..events {
        // Crude Zipf sampler over ranks 1..d via inverse power draw.
        let u = rng.next_open_f64();
        let rank_a = ((1.0 / u).powf(0.7) as usize).min(d - 1);
        site_a.update(rank_a, 1.0).expect("update");
        true_a[rank_a] += 1.0;

        let u = rng.next_open_f64();
        let rank_b = (((1.0 / u).powf(0.7) as usize) + 50).min(d - 1);
        site_b.update(rank_b, 1.0).expect("update");
        true_b[rank_b] += 1.0;
    }
    println!(
        "processed {events} events per site ({} turnstile updates each)",
        site_a.update_count()
    );

    // Private releases with per-site noise seeds: the sketcher applies
    // its own calibrated mechanism to the maintained projection.
    let rel_a = site_a
        .release_via(&sketcher, Seed::new(1001))
        .expect("release");
    let rel_b = site_b
        .release_via(&sketcher, Seed::new(2002))
        .expect("release");

    let est = rel_a.estimate_sq_distance(&rel_b).expect("estimate");
    let true_dist = dp_euclid::linalg::vector::sq_distance(&true_a, &true_b);
    println!("true  ‖histA − histB‖² = {true_dist:.0}");
    println!("est.  ‖histA − histB‖² = {est:.0}");
    let rel_err = (est - true_dist).abs() / true_dist;
    println!("relative error = {:.1}%", 100.0 * rel_err);
    assert!(rel_err < 0.5, "estimate should land within 50% here");

    // The same released sketches also answer norm queries.
    let norm_est = rel_a.estimate_sq_norm();
    let true_norm = dp_euclid::linalg::vector::sq_norm(&true_a);
    println!("site A traffic mass² estimate: {norm_est:.0} (true {true_norm:.0})");
}
