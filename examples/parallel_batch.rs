//! The parallel execution layer, end to end: data-parallel batch
//! sketching and the tiled all-pairs kernel on the `Parallelism` knob.
//!
//! One sketcher releases a batch of rows, first on the sequential
//! fallback and then on every hardware thread, and the example verifies
//! the determinism contract: released sketches and the all-pairs
//! distance matrix are *bit-identical* for every thread count and tile
//! size, because per-row noise seeds derive from the row index and each
//! pair is computed exactly once with the same floating-point
//! expression. The knob is also readable from the environment:
//! `DP_THREADS=8 DP_TILE=32 cargo run --release --example parallel_batch`
//!
//! Run with: `cargo run --release --example parallel_batch`

use dp_euclid::prelude::*;
use std::time::Instant;

fn main() -> Result<(), dp_euclid::core::CoreError> {
    let d = 1 << 10;
    let n = 256;
    let config = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.25)
        .beta(0.05)
        .epsilon(2.0)
        .build()?;
    let spec = SketcherSpec::new(Construction::SjltAuto, config, Seed::new(7));

    // Deterministic pseudo-random rows.
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|r| {
            use dp_euclid::hashing::Prng;
            let mut rng = Seed::new(1000 + r).rng();
            (0..d).map(|_| rng.next_f64() * 2.0 - 1.0).collect()
        })
        .collect();

    // The knob is an execution-side concern: same spec, same releases,
    // different scheduling. `build_with` attaches it at build time.
    let sequential = spec.build_with(Parallelism::sequential())?;
    let parallel = spec.build_with(Parallelism::from_env())?;
    println!(
        "sketcher: k = {}, sequential vs {} worker(s), tile = {}",
        sequential.k(),
        parallel.parallelism().threads(),
        parallel.parallelism().tile()
    );

    let t0 = Instant::now();
    let batch_seq = sequential.sketch_batch(&rows, Seed::new(42))?;
    let t_seq = t0.elapsed();
    let t0 = Instant::now();
    let batch_par = parallel.sketch_batch(&rows, Seed::new(42))?;
    let t_par = t0.elapsed();
    assert_eq!(batch_seq, batch_par, "determinism contract violated");
    println!(
        "sketch_batch({n} rows): sequential {:.1} ms, parallel {:.1} ms — bit-identical",
        t_seq.as_secs_f64() * 1e3,
        t_par.as_secs_f64() * 1e3
    );

    // The all-pairs surface: tiled kernel, any thread count, any tile
    // size — one matrix.
    let reference = pairwise_sq_distances(&batch_seq)?;
    for (threads, tile) in [(1, 64), (2, 64), (4, 16), (8, 7)] {
        let m = pairwise_sq_distances_with_par(
            &batch_par,
            |s| s,
            &Parallelism::new(threads).with_tile(tile),
        )?;
        let identical = m
            .as_flat()
            .iter()
            .zip(reference.as_flat())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "threads = {threads}, tile = {tile}");
        println!("pairwise {n}x{n}: threads = {threads}, tile = {tile:2} — bit-identical");
    }

    // The estimates are live: row 0 vs row 1 true distance vs estimate.
    let true_d2: f64 = rows[0]
        .iter()
        .zip(&rows[1])
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    // Single-shot estimates are unbiased but noisy; print the paper's
    // predicted stddev so the deviation has context.
    println!(
        "pair (0,1): true distance² = {:.1}, estimate = {:.1} (predicted stddev {:.1})",
        true_d2,
        reference.at(0, 1),
        sequential.predicted_variance(true_d2).predicted_stddev()
    );
    Ok(())
}
