//! Quickstart: two parties privately estimate the distance between their
//! vectors using the paper's main construction (private SJLT, Theorem 3),
//! selected through the unified `PrivateSketcher` trait.
//!
//! Run with: `cargo run --release --example quickstart`

use dp_euclid::core::CoreError;
use dp_euclid::prelude::*;

fn main() -> Result<(), CoreError> {
    // Problem setup: two parties hold d-dimensional vectors.
    let d = 1 << 12;
    // Indicator-style features scaled to 10 so the true distance clears
    // the eps = 1 noise floor in a single release (the predicted stddev
    // below quantifies that floor).
    let x: Vec<f64> = (0..d)
        .map(|i| 10.0 * f64::from(u8::from(i % 7 == 0)))
        .collect();
    let y: Vec<f64> = (0..d)
        .map(|i| 10.0 * f64::from(u8::from(i % 5 == 0)))
        .collect();
    let true_dist_sq = dp_euclid::linalg::vector::sq_distance(&x, &y);

    // Shared, PUBLIC spec: the construction, accuracy (α, β), privacy ε
    // (no δ → pure DP via Laplace noise, the paper's headline setting),
    // and the public transform seed every participant uses.
    let config = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.2)
        .beta(0.05)
        .epsilon(1.0)
        .build()?;
    let spec = SketcherSpec::new(Construction::SjltAuto, config, Seed::new(2021));
    let sketcher = spec.build()?;
    println!(
        "sketcher: construction = {}, k = {}, noise = {}, guarantee = {}",
        spec.construction().name(),
        sketcher.k(),
        sketcher.noise_name(),
        sketcher.guarantee()
    );

    // Each party releases a noisy sketch with its own PRIVATE noise seed.
    let sketch_x = sketcher.sketch(&x, Seed::new(0xA11CE))?;
    let sketch_y = sketcher.sketch(&y, Seed::new(0xB0B))?;

    // Anyone can estimate the squared distance from the released objects.
    let est = sketcher.estimate_sq_distance(&sketch_x, &sketch_y)?;
    let bound = sketcher.predicted_variance(true_dist_sq);
    println!("true  ‖x−y‖² = {true_dist_sq:.1}");
    println!(
        "est.  ‖x−y‖² = {est:.1}  (predicted stddev {:.1})",
        bound.predicted_stddev()
    );
    let err_sd = (est - true_dist_sq).abs() / bound.predicted_stddev();
    println!("error = {err_sd:.2} predicted standard deviations");
    assert!(
        err_sd < 6.0,
        "estimate should fall within a few predicted stddevs"
    );
    Ok(())
}
