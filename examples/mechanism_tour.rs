//! Mechanism tour: the decision rules of the paper, end to end.
//!
//! Walks one configuration through every construction the paper compares
//! (§7): the Kenthapadi baseline, both private FJLTs, and the private
//! SJLT under both noise families — printing the calibrated noise, the
//! guarantee, and the predicted variance at a reference distance, plus
//! the Note 5 noise-selection rule and the §2.3.1 discrete alternatives.
//!
//! Run with: `cargo run --release --example mechanism_tour`

use dp_euclid::core::fjlt_private::{PrivateFjltInput, PrivateFjltOutput};
use dp_euclid::core::kenthapadi::{Kenthapadi, SigmaCalibration};
use dp_euclid::core::variance::delta_crossover;
use dp_euclid::hashing::Seed;
use dp_euclid::noise::discrete_gaussian::DiscreteGaussian;
use dp_euclid::noise::discrete_laplace::DiscreteLaplace;
use dp_euclid::prelude::*;
use dp_euclid::stats::Table;

fn main() {
    let d = 1 << 10;
    let (eps, delta) = (1.0, 1e-8);
    let ref_dist_sq = 25.0;
    let cfg = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.25)
        .beta(0.05)
        .epsilon(eps)
        .delta(delta)
        .build()
        .expect("config");
    let cfg_pure = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.25)
        .beta(0.05)
        .epsilon(eps)
        .build()
        .expect("config");
    let seed = Seed::new(7);

    let mut table = Table::new(vec!["construction", "guarantee", "pred. var @ dist²=25", "init cost"]);

    let ken = Kenthapadi::new(&cfg, SigmaCalibration::ExactSensitivity, seed).expect("baseline");
    table.row(vec![
        "kenthapadi (iid + gaussian)".to_string(),
        ken.guarantee().to_string(),
        format!("{:.1}", ken.variance(ref_dist_sq).predicted_variance),
        "O(dk) scan".to_string(),
    ]);

    let fout = PrivateFjltOutput::new(&cfg, seed).expect("fjlt");
    table.row(vec![
        "private FJLT (output noise)".to_string(),
        fout.guarantee().to_string(),
        format!("{:.1}", fout.variance_bound(ref_dist_sq).predicted_variance),
        "O(dk)-class scan".to_string(),
    ]);

    let fin = PrivateFjltInput::new(&cfg, seed).expect("fjlt");
    table.row(vec![
        "private FJLT (input noise)".to_string(),
        fin.guarantee().to_string(),
        format!("{:.1}", fin.variance_bound(ref_dist_sq).predicted_variance),
        "none".to_string(),
    ]);

    let sj_g = PrivateSjlt::with_gaussian(&cfg, seed).expect("sjlt");
    table.row(vec![
        "private SJLT (gaussian)".to_string(),
        sj_g.guarantee().to_string(),
        format!("{:.1}", sj_g.variance_bound(ref_dist_sq).predicted_variance),
        "none (∆ a priori)".to_string(),
    ]);

    let sj_l = PrivateSjlt::with_laplace(&cfg_pure, seed).expect("sjlt");
    table.row(vec![
        "private SJLT (laplace)".to_string(),
        sj_l.guarantee().to_string(),
        format!("{:.1}", sj_l.variance_bound(ref_dist_sq).predicted_variance),
        "none (∆ a priori)".to_string(),
    ]);
    println!("{table}");

    // Note 5 in action.
    println!(
        "Note 5: with s = {}, Laplace noise wins iff delta < e^(-s) = {:.2e}",
        cfg.s(),
        cfg.laplace_delta_threshold()
    );
    println!(
        "   your delta = {delta:.0e} -> selected noise: {:?}",
        cfg.sjlt_noise_choice()
    );
    let crossover = delta_crossover(cfg.k_sjlt(), cfg.s(), eps, ref_dist_sq, 0.0);
    println!("   exact variance crossover at this distance: delta* = {crossover:.2e}");

    // §2.3.1: the discrete, floating-point-safe alternatives.
    let dl = DiscreteLaplace::new((cfg.s() as f64).sqrt() / eps).expect("dlap");
    let dg = DiscreteGaussian::new((2.0 * (1.25f64 / delta).ln()).sqrt() / eps).expect("dgau");
    println!(
        "discrete alternatives (2.3.1): DLap E[n^2] = {:.2} (continuous {:.2}); NZ E[n^2] = {:.2} <= sigma^2 = {:.2}",
        dl.second_moment(),
        2.0 * cfg.s() as f64 / (eps * eps),
        dg.second_moment(),
        dg.sigma() * dg.sigma()
    );
}
