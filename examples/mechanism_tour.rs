//! Mechanism tour: the decision rules of the paper, end to end.
//!
//! Walks one configuration through every construction the paper compares
//! (§7) — the Kenthapadi baseline, both private FJLTs, and the private
//! SJLT under both noise families — all built through the unified
//! `SketcherSpec`/`AnySketcher` API, printing the guarantee and the
//! predicted variance at a reference distance, plus the Note 5
//! noise-selection rule and the §2.3.1 discrete alternatives.
//!
//! Run with: `cargo run --release --example mechanism_tour`

use dp_euclid::core::variance::delta_crossover;
use dp_euclid::hashing::Seed;
use dp_euclid::noise::discrete_gaussian::DiscreteGaussian;
use dp_euclid::noise::discrete_laplace::DiscreteLaplace;
use dp_euclid::prelude::*;
use dp_euclid::stats::Table;

fn main() {
    let d = 1 << 10;
    let (eps, delta) = (1.0, 1e-8);
    let ref_dist_sq = 25.0;
    let cfg = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.25)
        .beta(0.05)
        .epsilon(eps)
        .delta(delta)
        .build()
        .expect("config");
    let cfg_pure = SketchConfig::builder()
        .input_dim(d)
        .alpha(0.25)
        .beta(0.05)
        .epsilon(eps)
        .build()
        .expect("config");
    let seed = Seed::new(7);

    // Every construction through the one trait; the pure-DP config is
    // used where it forces the Laplace side of Note 5.
    let tour: Vec<(Construction, &SketchConfig, &str)> = vec![
        (
            Construction::Kenthapadi(SigmaCalibration::ExactSensitivity),
            &cfg,
            "O(dk) scan",
        ),
        (Construction::FjltOutput, &cfg, "O(dk)-class scan"),
        (Construction::FjltInput, &cfg, "none"),
        (Construction::SjltGaussian, &cfg, "none (∆ a priori)"),
        (Construction::SjltLaplace, &cfg_pure, "none (∆ a priori)"),
    ];

    let mut table = Table::new(vec![
        "construction",
        "guarantee",
        "pred. var @ dist²=25",
        "init cost",
    ]);
    for (construction, config, init_cost) in tour {
        let spec = SketcherSpec::new(construction, config.clone(), seed);
        let sk = spec.build().expect("construct");
        table.row(vec![
            construction.name().to_string(),
            sk.guarantee().to_string(),
            format!(
                "{:.1}",
                sk.predicted_variance(ref_dist_sq).predicted_variance
            ),
            init_cost.to_string(),
        ]);
    }
    println!("{table}");

    // Note 5 in action.
    println!(
        "Note 5: with s = {}, Laplace noise wins iff delta < e^(-s) = {:.2e}",
        cfg.s(),
        cfg.laplace_delta_threshold()
    );
    println!(
        "   your delta = {delta:.0e} -> selected noise: {:?}",
        cfg.sjlt_noise_choice()
    );
    println!(
        "   through the trait: Construction::SjltAuto resolves to '{}'",
        AnySketcher::new(Construction::SjltAuto, &cfg, seed)
            .expect("construct")
            .noise_name()
    );
    let crossover = delta_crossover(cfg.k_sjlt(), cfg.s(), eps, ref_dist_sq, 0.0);
    println!("   exact variance crossover at this distance: delta* = {crossover:.2e}");

    // §2.3.1: the discrete, floating-point-safe alternatives.
    let dl = DiscreteLaplace::new((cfg.s() as f64).sqrt() / eps).expect("dlap");
    let dg = DiscreteGaussian::new((2.0 * (1.25f64 / delta).ln()).sqrt() / eps).expect("dgau");
    println!(
        "discrete alternatives (2.3.1): DLap E[n^2] = {:.2} (continuous {:.2}); NZ E[n^2] = {:.2} <= sigma^2 = {:.2}",
        dl.second_moment(),
        2.0 * cfg.s() as f64 / (eps * eps),
        dg.second_moment(),
        dg.sigma() * dg.sigma()
    );
}
